"""Micro-batching scheduler: coalesce concurrent queries into engine batches.

The batched engine (``LOVO.query_batch``) amortises text encoding, the ANN
probes, and candidate-frame re-encoding across a batch — but only if someone
actually forms batches.  Under concurrent load, requests arrive one at a time
from independent callers; the :class:`MicroBatcher` sits between them and the
engine, holding the admission queue and handing worker threads *coalesced*
batches: a worker blocks for the first pending query, then keeps collecting
until either ``max_batch_size`` queries are in hand or ``max_wait_ms`` has
passed since the first one.  Callers get a :class:`concurrent.futures.Future`
that resolves when their batch executes.

The queue is bounded: when it is full, :meth:`submit` raises
:class:`~repro.errors.ServiceOverloadedError` instead of buffering without
limit — that backpressure is what keeps latency bounded when offered load
exceeds capacity.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.query import QueryOptions
from repro.errors import ServiceOverloadedError, ServingError
from repro.obs.trace import Trace
from repro.utils.locking import create_lock


@dataclass
class PendingQuery:
    """One admitted query waiting to be coalesced into a micro-batch.

    ``options`` is the canonical per-request state; ``top_n`` is kept as a
    deprecated construction shim (it is folded into :meth:`effective_options`
    when no explicit options were given).
    """

    text: str
    top_n: Optional[int] = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    options: Optional[QueryOptions] = None
    #: The request's trace (``None`` when tracing is disabled).  It rides
    #: along through the queue so the worker that picks the batch up can
    #: record the queue-wait span and fan engine spans into it.
    trace: Optional["Trace"] = None

    def effective_options(self) -> QueryOptions:
        """The canonical options of this query (legacy ``top_n`` folded in)."""
        if self.options is not None:
            return self.options
        return QueryOptions(top_n=self.top_n)


class MicroBatcher:
    """Bounded admission queue plus the batch-coalescing pull loop."""

    #: How often a blocked :meth:`next_batch` re-checks for shutdown.
    _POLL_SECONDS = 0.05

    def __init__(
        self,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        queue_size: int = 256,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if queue_size <= 0:
            raise ValueError("queue_size must be positive")
        self._max_batch_size = max_batch_size
        self._max_wait_seconds = max_wait_ms / 1000.0
        self._queue: "queue.Queue[PendingQuery]" = queue.Queue(maxsize=queue_size)
        self._closed = threading.Event()
        # Makes the closed-check + enqueue in submit() atomic with close():
        # once close() returns, no further submission can slip into the queue,
        # so a post-shutdown drain is guaranteed to see every admitted query.
        self._submit_lock = create_lock("MicroBatcher._submit_lock")

    @property
    def max_batch_size(self) -> int:
        """Upper bound on queries coalesced into one batch."""
        return self._max_batch_size

    @property
    def depth(self) -> int:
        """Number of admitted queries not yet pulled into a batch."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        """Whether the batcher has stopped accepting new queries."""
        return self._closed.is_set()

    def submit(self, pending: PendingQuery) -> None:
        """Admit one query, or reject it when the queue is full / closed."""
        with self._submit_lock:
            if self._closed.is_set():
                raise ServingError("Cannot submit to a closed micro-batcher")
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                raise ServiceOverloadedError(
                    f"Admission queue is full ({self._queue.maxsize} pending queries); "
                    "retry after a short delay"
                ) from None

    def next_batch(self) -> Optional[List[PendingQuery]]:
        """Block for the next micro-batch; ``None`` once closed and drained.

        Safe to call from several worker threads: each admitted query lands
        in exactly one batch.  After :meth:`close`, remaining queued queries
        keep being handed out so a graceful shutdown drains the queue.
        """
        while True:
            try:
                first = self._queue.get(timeout=self._POLL_SECONDS)
                break
            except queue.Empty:
                if self._closed.is_set():
                    return None
        batch = [first]
        deadline = time.monotonic() + self._max_wait_seconds
        while len(batch) < self._max_batch_size:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0:
                    batch.append(self._queue.get_nowait())
                else:
                    batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def close(self) -> None:
        """Stop admitting queries; queued ones still drain via :meth:`next_batch`.

        Once this returns, no concurrent :meth:`submit` can succeed anymore.
        """
        with self._submit_lock:
            self._closed.set()

    def drain(self) -> List[PendingQuery]:
        """Remove and return everything still queued (for non-graceful stops)."""
        drained: List[PendingQuery] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                return drained
