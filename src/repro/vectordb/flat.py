"""Brute-force (exact) inner-product index — the LOVO(BF) variant of Table V.

The index stores its vectors as **rolling segments**: sealed immutable blocks
plus an active tail of recently appended chunks.  Appends never rewrite a
sealed block, so a live reader and a streaming writer can overlap without a
lock on the search path — the searchable state is one immutable tuple that the
writer replaces atomically (copy-on-write) and readers snapshot with a single
reference read.

Scoring each segment separately is bit-identical to scoring one monolithic
matrix because :func:`~repro.vectordb.base.exact_scores` pads every row/query
tile to a fixed shape: each (row, query) score is independent of where the row
lives.  Segment scores are concatenated in insertion order before ranking, so
streamed ingest produces exactly the results of an offline build.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import SnapshotCorruptionError, VectorDatabaseError
from repro.vectordb.base import IndexHit, VectorIndex, exact_scores
from repro.utils.locking import create_lock

#: Tail chunks are folded into one sealed block once they reach this many rows.
SEGMENT_SEAL_ROWS = 4096

#: One immutable searchable view: the segment blocks (each a read-only
#: ``(rows, dim)`` matrix, in insertion order) plus the concatenated id vector.
_FlatView = Tuple[Tuple[np.ndarray, ...], np.ndarray]


class FlatIndex(VectorIndex):
    """Exact search over rolling segments of unit-norm vectors."""

    def __init__(self, dim: int, *, seal_rows: int = SEGMENT_SEAL_ROWS) -> None:
        super().__init__(dim)
        self._seal_rows = max(1, int(seal_rows))
        self._write_lock = create_lock("FlatIndex._write_lock")
        self._sealed: List[np.ndarray] = []
        self._tail: List[np.ndarray] = []
        self._view: _FlatView = ((), np.zeros(0, dtype=np.int64))

    @property
    def ntotal(self) -> int:
        return int(self._view[1].shape[0])

    def segment_sizes(self) -> List[int]:
        """Row counts of the current segments, sealed blocks first."""
        blocks, _ = self._view
        return [int(block.shape[0]) for block in blocks]

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        data = self._validate(vectors)
        if len(ids) != data.shape[0]:
            raise VectorDatabaseError(
                f"Got {len(ids)} ids for {data.shape[0]} vectors"
            )
        if data.shape[0] == 0:
            return
        new_ids = np.asarray(ids, dtype=np.int64)
        with self._write_lock:
            self._tail.append(data)
            if sum(chunk.shape[0] for chunk in self._tail) >= self._seal_rows:
                # lovo: ignore[LOVO005] sealed chunks ARE the stored corpus; deleting them loses data
                self._sealed.append(
                    self._tail[0] if len(self._tail) == 1 else np.vstack(self._tail)
                )
                self._tail = []
            _, old_ids = self._view
            self._view = (
                tuple(self._sealed) + tuple(self._tail),
                np.concatenate([old_ids, new_ids]),
            )

    def build(self) -> None:
        """No-op: rolling segments are always searchable."""

    def search(self, query: np.ndarray, k: int) -> List[IndexHit]:
        blocks, ids = self._view
        if ids.shape[0] == 0 or k <= 0:
            return []
        vector = self._validate_query(query)
        scores = self._score_segments(blocks, vector[None, :])[:, 0]
        return self._rank_row(scores, ids, k)

    def search_batch(self, queries: np.ndarray, k: int) -> List[List[IndexHit]]:
        """Exact multi-query search: one tiled matrix-matrix product per segment.

        Scoring all ``m`` queries through shared GEMM tiles instead of ``m``
        separate matrix-vector products is where the batch path earns its
        speedup — the per-call Python and BLAS dispatch overhead is paid once
        per tile for the whole batch.  The fixed tile shape (see
        :func:`~repro.vectordb.base.exact_scores`) keeps scores bit-identical
        regardless of how the stored rows are segmented or sharded.
        """
        batch = self._validate_query_batch(queries)
        blocks, ids = self._view
        if ids.shape[0] == 0 or k <= 0:
            return [[] for _ in range(batch.shape[0])]
        scores = self._score_segments(blocks, batch)
        return [
            self._rank_row(scores[:, column], ids, k)
            for column in range(batch.shape[0])
        ]

    @staticmethod
    def _score_segments(blocks: Tuple[np.ndarray, ...], batch: np.ndarray) -> np.ndarray:
        if len(blocks) == 1:
            return exact_scores(blocks[0], batch)
        return np.concatenate([exact_scores(block, batch) for block in blocks], axis=0)

    def matrix(self) -> np.ndarray:
        """All stored vectors as one matrix in insertion order (a copy when
        more than one segment exists)."""
        blocks, _ = self._view
        if not blocks:
            return np.zeros((0, self.dim), dtype=np.float64)
        if len(blocks) == 1:
            return blocks[0]
        return np.vstack(blocks)

    def to_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Serialise the concatenated score matrix and id vector.

        ``raw_vectors`` tells the owning collection that ``matrix`` holds the
        raw vectors in insertion order, so it need not store its own copy.
        The segment boundaries are deliberately *not* persisted: a loaded
        index starts from one sealed block, and searches stay bit-identical
        because per-row scores do not depend on segmentation.
        """
        blocks, ids = self._view
        if not blocks:
            matrix = np.zeros((0, self.dim), dtype=np.float64)
        elif len(blocks) == 1:
            matrix = blocks[0]
        else:
            matrix = np.vstack(blocks)
        return (
            {"kind": "flat", "raw_vectors": "matrix"},
            {"matrix": matrix, "ids": ids},
        )

    @classmethod
    def from_state(
        cls,
        dim: int,
        config: object,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
    ) -> "FlatIndex":
        index = cls(dim)
        matrix = np.asarray(arrays["matrix"], dtype=np.float64)
        ids = np.asarray(arrays["ids"], dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != dim or matrix.shape[0] != ids.shape[0]:
            raise SnapshotCorruptionError(
                f"Flat index state is inconsistent: matrix {matrix.shape}, "
                f"{ids.shape[0]} ids, dim {dim}"
            )
        if matrix.shape[0]:
            index._sealed = [matrix]
            index._view = ((matrix,), ids)
        return index

    @staticmethod
    def _rank_row(scores: np.ndarray, ids: np.ndarray, k: int) -> List[IndexHit]:
        """Top-``k`` hits of one precomputed score row, best first."""
        k = min(k, scores.shape[0])
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return [IndexHit(id=int(ids[i]), score=float(scores[i])) for i in top]
