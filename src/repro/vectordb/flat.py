"""Brute-force (exact) inner-product index — the LOVO(BF) variant of Table V."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import SnapshotCorruptionError, VectorDatabaseError
from repro.vectordb.base import IndexHit, VectorIndex, exact_scores


class FlatIndex(VectorIndex):
    """Exact search by a single matrix-vector product over all vectors."""

    def __init__(self, dim: int) -> None:
        super().__init__(dim)
        self._chunks: List[np.ndarray] = []
        self._id_chunks: List[np.ndarray] = []
        self._matrix: np.ndarray | None = None
        self._ids: np.ndarray | None = None

    @property
    def ntotal(self) -> int:
        if self._matrix is not None:
            return int(self._matrix.shape[0])
        return int(sum(chunk.shape[0] for chunk in self._chunks))

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        data = self._validate(vectors)
        if len(ids) != data.shape[0]:
            raise VectorDatabaseError(
                f"Got {len(ids)} ids for {data.shape[0]} vectors"
            )
        self._chunks.append(data)
        self._id_chunks.append(np.asarray(ids, dtype=np.int64))
        self._matrix = None
        self._ids = None

    def build(self) -> None:
        if self._matrix is not None:
            return
        if not self._chunks:
            self._matrix = np.zeros((0, self.dim), dtype=np.float64)
            self._ids = np.zeros(0, dtype=np.int64)
            return
        self._matrix = np.vstack(self._chunks)
        self._ids = np.concatenate(self._id_chunks)

    def search(self, query: np.ndarray, k: int) -> List[IndexHit]:
        self.build()
        assert self._matrix is not None and self._ids is not None
        if self._matrix.shape[0] == 0 or k <= 0:
            return []
        vector = self._validate_query(query)
        scores = exact_scores(self._matrix, vector[None, :])[:, 0]
        return self._rank_row(scores, k)

    def search_batch(self, queries: np.ndarray, k: int) -> List[List[IndexHit]]:
        """Exact multi-query search: one tiled matrix-matrix product.

        Scoring all ``m`` queries through shared GEMM tiles instead of ``m``
        separate matrix-vector products is where the batch path earns its
        speedup — the per-call Python and BLAS dispatch overhead is paid once
        per tile for the whole batch.  The fixed tile shape (see
        :func:`~repro.vectordb.base.exact_scores`) keeps scores bit-identical
        regardless of how the stored rows are sharded.
        """
        batch = self._validate_query_batch(queries)
        self.build()
        assert self._matrix is not None and self._ids is not None
        if self._matrix.shape[0] == 0 or k <= 0:
            return [[] for _ in range(batch.shape[0])]
        scores = exact_scores(self._matrix, batch)
        return [self._rank_row(scores[:, column], k) for column in range(batch.shape[0])]

    def to_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Serialise the finalised score matrix and id vector.

        ``raw_vectors`` tells the owning collection that ``matrix`` holds the
        raw vectors in insertion order, so it need not store its own copy.
        """
        self.build()
        assert self._matrix is not None and self._ids is not None
        return (
            {"kind": "flat", "raw_vectors": "matrix"},
            {"matrix": self._matrix, "ids": self._ids},
        )

    @classmethod
    def from_state(
        cls,
        dim: int,
        config: object,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
    ) -> "FlatIndex":
        index = cls(dim)
        matrix = np.asarray(arrays["matrix"], dtype=np.float64)
        ids = np.asarray(arrays["ids"], dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != dim or matrix.shape[0] != ids.shape[0]:
            raise SnapshotCorruptionError(
                f"Flat index state is inconsistent: matrix {matrix.shape}, "
                f"{ids.shape[0]} ids, dim {dim}"
            )
        # Seed the chunk lists as well as the finalised views so that add()
        # after a load (which invalidates the views and re-vstacks the
        # chunks) keeps the restored vectors.
        if matrix.shape[0]:
            index._chunks = [matrix]
            index._id_chunks = [ids]
        index._matrix = matrix
        index._ids = ids
        return index

    def _rank_row(self, scores: np.ndarray, k: int) -> List[IndexHit]:
        """Top-``k`` hits of one precomputed score row, best first."""
        assert self._ids is not None
        k = min(k, scores.shape[0])
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return [IndexHit(id=int(self._ids[i]), score=float(scores[i])) for i in top]
