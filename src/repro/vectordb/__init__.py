"""From-scratch vector database: quantization, ANN indexes, collections."""

from repro.vectordb.collection import SearchHit, VectorCollection
from repro.vectordb.database import VectorDatabase
from repro.vectordb.flat import FlatIndex
from repro.vectordb.hnsw import HNSWIndex
from repro.vectordb.ivfpq import IVFPQIndex
from repro.vectordb.kmeans import KMeansResult, lloyd_kmeans
from repro.vectordb.metadata import MetadataStore
from repro.vectordb.quantization import ProductQuantizer

__all__ = [
    "VectorCollection",
    "SearchHit",
    "VectorDatabase",
    "FlatIndex",
    "IVFPQIndex",
    "HNSWIndex",
    "MetadataStore",
    "ProductQuantizer",
    "lloyd_kmeans",
    "KMeansResult",
]
