"""Inverted multi-index with product quantization (paper §V-B, Algorithm 1).

The index combines two levels of quantization:

* a **coarse quantizer** (k-means over the full vectors) partitions the
  collection into inverted lists — the "clusters" of Algorithm 1;
* a **product quantizer** encodes the *residual* of each vector with respect
  to its coarse centroid as ``P`` sub-codes.

At query time the coarse centroids are ranked by similarity with the query,
the best ``A`` (``nprobe``) inverted lists are scanned, and each stored code
is scored with an ADC lookup table:

``s(q, c_a) ≈ s(q, centroid) + q · residual(c_a)``

which is exactly the approximation in lines 8–11 of Algorithm 1.  The top
candidates are then re-scored exactly with the reconstructed vectors (lines
13–15) and returned in descending order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.config import IndexConfig
from repro.errors import IndexNotBuiltError, SnapshotCorruptionError, VectorDatabaseError
from repro.obs.trace import record_span, tracing_active
from repro.vectordb.base import IndexHit, VectorIndex, exact_scores
from repro.vectordb.kmeans import lloyd_kmeans
from repro.vectordb.quantization import ProductQuantizer
from repro.utils.locking import create_lock


@dataclass
class _InvertedList:
    """One coarse cluster: the ids, PQ codes, and residual reconstructions."""

    ids: List[int] = field(default_factory=list)
    codes: List[np.ndarray] = field(default_factory=list)
    _cached: tuple[np.ndarray, np.ndarray] | None = field(default=None, repr=False)

    def extend(self, ids: Sequence[int], codes: Sequence[np.ndarray]) -> None:
        """Append members and refresh the cached arrays in one step.

        The cache is rebuilt here, by the (lock-holding) writer, rather than
        lazily inside :meth:`as_arrays`: a concurrent search that raced the
        lazy rebuild could pair a fresh id array with a stale code matrix.
        Building the new tuple first and publishing it with a single
        reference assignment keeps readers on a consistent point-in-time
        view — either entirely before or entirely after this append.
        """
        self.ids.extend(ids)
        self.codes.extend(codes)
        self._cached = (np.asarray(self.ids, dtype=np.int64), np.vstack(self.codes))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Id and code arrays; the cache is maintained by :meth:`extend`.

        Searches hit every probed list once per query, so materialising the
        arrays on every call (the original behaviour) made scan cost scale
        with query count.  Readers take one reference read — never a rebuild
        that could race a concurrent append.
        """
        cached = self._cached
        if cached is None:
            if not self.ids:
                return (np.zeros(0, dtype=np.int64), np.zeros((0, 0), dtype=np.int32))
            cached = (np.asarray(self.ids, dtype=np.int64), np.vstack(self.codes))
            self._cached = cached
        return cached


class IVFPQIndex(VectorIndex):
    """Quantization-based inverted multi-index (the paper's default index)."""

    def __init__(self, dim: int, config: IndexConfig | None = None) -> None:
        super().__init__(dim)
        self._config = config or IndexConfig()
        if dim % self._config.num_subspaces != 0:
            raise VectorDatabaseError(
                f"Dimension {dim} is not divisible by num_subspaces "
                f"{self._config.num_subspaces}"
            )
        self._insert_lock = create_lock("IVFPQIndex._insert_lock")
        self._pending_ids: List[int] = []
        self._pending_vectors: List[np.ndarray] = []
        self._coarse_centroids: np.ndarray | None = None
        self._lists: Dict[int, _InvertedList] = {}
        self._quantizer = ProductQuantizer(
            num_subspaces=self._config.num_subspaces,
            num_centroids=self._config.num_centroids,
            kmeans_iterations=self._config.kmeans_iterations,
        )
        self._built = False
        self._count = 0

    @property
    def config(self) -> IndexConfig:
        """Index configuration (nlist, nprobe, PQ parameters)."""
        return self._config

    @property
    def ntotal(self) -> int:
        return self._count + len(self._pending_ids)

    @property
    def nprobe(self) -> int:
        """Number of inverted lists visited per query."""
        return self._config.nprobe

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        data = self._validate(vectors)
        if len(ids) != data.shape[0]:
            raise VectorDatabaseError(f"Got {len(ids)} ids for {data.shape[0]} vectors")
        if self._built:
            # Incremental insertion after build: assign to existing structures.
            self._insert_built(list(ids), data)
            return
        self._pending_ids.extend(int(identifier) for identifier in ids)
        self._pending_vectors.append(data)

    def build(self) -> None:
        """Train the coarse quantizer and PQ codebooks, then fill the lists."""
        if self._built:
            return
        if not self._pending_vectors:
            raise IndexNotBuiltError("Cannot build an IVF-PQ index with no vectors")
        vectors = np.vstack(self._pending_vectors)
        ids = list(self._pending_ids)

        num_clusters = min(self._config.num_coarse_clusters, vectors.shape[0])
        coarse = lloyd_kmeans(
            vectors,
            num_clusters=num_clusters,
            max_iterations=self._config.kmeans_iterations,
            seed=1,
        )
        self._coarse_centroids = coarse.centroids

        residuals = vectors - coarse.centroids[coarse.assignments]
        self._quantizer.train(residuals)
        self._built = True
        self._lists = {}
        self._count = 0
        self._fill_lists(ids, vectors, coarse.assignments)
        self._pending_ids = []
        self._pending_vectors = []

    def search(self, query: np.ndarray, k: int) -> List[IndexHit]:
        vector = self._validate_query(query)
        return self._search_validated_batch(vector[None, :], k)[0]

    def search_batch(self, queries: np.ndarray, k: int) -> List[List[IndexHit]]:
        """Answer ``m`` queries with shared coarse-quantizer work.

        The coarse centroid scores for the whole batch come from a single
        ``(m, nlist)`` matrix product and the ADC lookup tables from one
        batched pass per subspace; only the per-query list scans and the
        exact re-score remain per row.
        """
        batch = self._validate_query_batch(queries)
        return self._search_validated_batch(batch, k)

    def _search_validated_batch(self, batch: np.ndarray, k: int) -> List[List[IndexHit]]:
        num_queries = batch.shape[0]
        if k <= 0 or self.ntotal == 0:
            return [[] for _ in range(num_queries)]
        if not self._built:
            self.build()
        assert self._coarse_centroids is not None
        if self._count == 0:
            return [[] for _ in range(num_queries)]

        # Stage spans (coarse ranking + table build, then the ADC list scans)
        # fan into any active request traces; when tracing is off the only
        # cost is one contextvar read.
        traced = tracing_active()
        started = time.perf_counter() if traced else 0.0

        # Shared across the batch: coarse centroid ranking and ADC tables.
        centroid_scores = batch @ self._coarse_centroids.T
        nprobe = min(self._config.nprobe, centroid_scores.shape[1])
        tables = self._quantizer.inner_product_tables_batch(batch)
        if traced:
            scanned = time.perf_counter()
            record_span(
                "coarse_scan",
                started,
                scanned,
                num_queries=num_queries,
                nlist=int(centroid_scores.shape[1]),
                nprobe=nprobe,
            )
        results = [
            self._scan_lists(batch[row], centroid_scores[row], tables[row], nprobe, k)
            for row in range(num_queries)
        ]
        if traced:
            record_span(
                "adc_scan",
                scanned,
                time.perf_counter(),
                num_queries=num_queries,
                nprobe=nprobe,
            )
        return results

    def _scan_lists(
        self,
        vector: np.ndarray,
        centroid_scores: np.ndarray,
        tables: np.ndarray,
        nprobe: int,
        k: int,
    ) -> List[IndexHit]:
        """Scan the best ``nprobe`` inverted lists for one query row."""
        assert self._coarse_centroids is not None
        probed = np.argsort(-centroid_scores)[:nprobe]
        subspaces = np.arange(self._quantizer.num_subspaces)
        candidate_ids: List[np.ndarray] = []
        candidate_scores: List[np.ndarray] = []
        candidate_codes: List[np.ndarray] = []
        candidate_clusters: List[np.ndarray] = []
        for cluster in probed:
            inverted = self._lists.get(int(cluster))
            if inverted is None or not inverted.ids:
                continue
            ids_array, codes = inverted.as_arrays()
            residual_scores = tables[subspaces[None, :], codes].sum(axis=1)
            candidate_ids.append(ids_array)
            candidate_scores.append(centroid_scores[cluster] + residual_scores)
            candidate_codes.append(codes)
            candidate_clusters.append(np.full(ids_array.shape[0], cluster, dtype=np.int64))
        if not candidate_ids:
            return []
        all_ids = np.concatenate(candidate_ids)
        all_scores = np.concatenate(candidate_scores)
        all_codes = np.vstack(candidate_codes)
        all_clusters = np.concatenate(candidate_clusters)

        # Short-list with the approximate scores, then re-score exactly using
        # the reconstructed vectors (coarse centroid + decoded residual).
        # Ordering ties by id keeps results deterministic even when distinct
        # vectors share a PQ code and therefore an identical approximate score.
        shortlist_size = min(max(k * 8, k), all_scores.shape[0])
        shortlist = np.lexsort((all_ids, -all_scores))[:shortlist_size]
        reconstructed = (
            self._coarse_centroids[all_clusters[shortlist]]
            + self._quantizer.decode(all_codes[shortlist])
        )
        rescored = reconstructed @ vector

        order = np.lexsort((all_ids[shortlist], -rescored))[: min(k, shortlist.shape[0])]
        return [
            IndexHit(id=int(all_ids[shortlist[i]]), score=float(rescored[i]))
            for i in order
        ]

    def to_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Serialise coarse centroids, PQ codebooks, and the inverted lists.

        Finalises (:meth:`build`) first so pending vectors are trained and
        assigned; the inverted lists are flattened to CSR-style arrays
        (cluster ids, offsets, concatenated member ids and codes).
        """
        self.build()
        assert self._coarse_centroids is not None
        clusters = np.asarray(sorted(self._lists), dtype=np.int64)
        offsets = np.zeros(clusters.shape[0] + 1, dtype=np.int64)
        all_ids: List[int] = []
        code_blocks: List[np.ndarray] = []
        for slot, cluster in enumerate(clusters):
            entry = self._lists[int(cluster)]
            all_ids.extend(entry.ids)
            if entry.codes:
                code_blocks.append(np.vstack(entry.codes))
            offsets[slot + 1] = offsets[slot] + len(entry.ids)
        codes = (
            np.vstack(code_blocks)
            if code_blocks
            else np.zeros((0, self._config.num_subspaces), dtype=np.int32)
        )
        meta: Dict[str, object] = {"kind": "ivfpq", "count": self._count}
        arrays: Dict[str, np.ndarray] = {
            "coarse_centroids": self._coarse_centroids,
            "list_clusters": clusters,
            "list_offsets": offsets,
            "list_ids": np.asarray(all_ids, dtype=np.int64),
            "list_codes": codes.astype(np.int32, copy=False),
        }
        arrays.update(self._quantizer.to_state())
        return meta, arrays

    @classmethod
    def from_state(
        cls,
        dim: int,
        config: object,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
    ) -> "IVFPQIndex":
        index_config = config if isinstance(config, IndexConfig) else IndexConfig()
        index = cls(dim, index_config)
        index._coarse_centroids = np.asarray(arrays["coarse_centroids"], dtype=np.float64)
        if index._coarse_centroids.ndim != 2 or index._coarse_centroids.shape[1] != dim:
            raise SnapshotCorruptionError(
                f"IVF-PQ coarse centroids must have shape (nlist, {dim}), "
                f"got {index._coarse_centroids.shape}"
            )
        index._quantizer = ProductQuantizer.from_state(
            arrays,
            num_subspaces=index_config.num_subspaces,
            num_centroids=index_config.num_centroids,
            kmeans_iterations=index_config.kmeans_iterations,
        )
        clusters = np.asarray(arrays["list_clusters"], dtype=np.int64)
        offsets = np.asarray(arrays["list_offsets"], dtype=np.int64)
        all_ids = np.asarray(arrays["list_ids"], dtype=np.int64)
        codes = np.asarray(arrays["list_codes"], dtype=np.int32)
        if offsets.shape[0] != clusters.shape[0] + 1 or (
            offsets.shape[0] and int(offsets[-1]) != all_ids.shape[0]
        ):
            raise SnapshotCorruptionError("IVF-PQ inverted-list offsets are inconsistent")
        if codes.shape[0] != all_ids.shape[0]:
            raise SnapshotCorruptionError(
                f"IVF-PQ has {all_ids.shape[0]} member ids but {codes.shape[0]} codes"
            )
        lists: Dict[int, _InvertedList] = {}
        for slot, cluster in enumerate(clusters):
            start, stop = int(offsets[slot]), int(offsets[slot + 1])
            entry = _InvertedList(
                ids=[int(identifier) for identifier in all_ids[start:stop]],
                codes=[code for code in codes[start:stop]],
            )
            lists[int(cluster)] = entry
        index._lists = lists
        index._count = int(meta.get("count", all_ids.shape[0]))
        index._built = True
        return index

    def list_sizes(self) -> Dict[int, int]:
        """Number of vectors stored per inverted list (diagnostics)."""
        return {cluster: len(entry.ids) for cluster, entry in self._lists.items()}

    def memory_bytes(self) -> int:
        """Approximate index memory footprint (codes + centroids)."""
        code_bytes = sum(len(entry.ids) * self._config.num_subspaces for entry in self._lists.values())
        centroid_bytes = 0
        if self._coarse_centroids is not None:
            centroid_bytes += self._coarse_centroids.size * 8
        if self._quantizer.is_trained:
            centroid_bytes += sum(book.size * 8 for book in self._quantizer.codebooks)
        return code_bytes + centroid_bytes

    def _fill_lists(self, ids: List[int], vectors: np.ndarray, assignments: np.ndarray) -> None:
        assert self._coarse_centroids is not None
        residuals = vectors - self._coarse_centroids[assignments]
        codes = self._quantizer.encode(residuals)
        grouped: Dict[int, tuple[List[int], List[np.ndarray]]] = {}
        for identifier, cluster, code in zip(ids, assignments, codes):
            member_ids, member_codes = grouped.setdefault(int(cluster), ([], []))
            member_ids.append(int(identifier))
            member_codes.append(code)
        for cluster, (member_ids, member_codes) in grouped.items():
            entry = self._lists.setdefault(cluster, _InvertedList())
            entry.extend(member_ids, member_codes)
        self._count += len(ids)

    def _insert_built(self, ids: List[int], vectors: np.ndarray) -> None:
        assert self._coarse_centroids is not None
        # Scoring through the fixed GEMM tiles of exact_scores keeps the
        # assignment of every appended vector independent of the append batch
        # shape, so streamed appends land in exactly the lists an offline
        # sequence of the same inserts would fill (and so do sharded appends
        # relative to the unsharded index).
        scores = exact_scores(self._coarse_centroids, vectors)
        assignments = scores.argmax(axis=0)
        with self._insert_lock:
            self._fill_lists(ids, vectors, assignments)
