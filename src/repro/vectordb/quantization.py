"""Product quantization (paper §V-B).

A ``D'``-dimensional class embedding is split into ``P`` subspaces of ``m``
dimensions each (``D' = P * m``); every subspace gets its own codebook of
``M`` centroids trained with Lloyd's k-means.  A vector is stored as ``P``
centroid indices (its PQ code), and asymmetric distance computation (ADC)
scores a query against codes through per-subspace lookup tables, exactly the
residual-and-lookup-table scheme Algorithm 1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from repro.errors import (
    DimensionMismatchError,
    IndexNotBuiltError,
    SnapshotCorruptionError,
    VectorDatabaseError,
)
from repro.vectordb.base import as_query_matrix
from repro.vectordb.kmeans import lloyd_kmeans


@dataclass
class ProductQuantizer:
    """Trains subspace codebooks and encodes/decodes vectors as PQ codes."""

    num_subspaces: int
    num_centroids: int
    kmeans_iterations: int = 15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_subspaces <= 0:
            raise VectorDatabaseError("num_subspaces must be positive")
        if self.num_centroids <= 1:
            raise VectorDatabaseError("num_centroids must be at least 2")
        self._codebooks: List[np.ndarray] | None = None
        self._dim: int | None = None
        self._subdim: int | None = None

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has been called."""
        return self._codebooks is not None

    @property
    def dim(self) -> int:
        """Dimensionality of the vectors the quantizer was trained on."""
        if self._dim is None:
            raise IndexNotBuiltError("ProductQuantizer has not been trained")
        return self._dim

    @property
    def subspace_dim(self) -> int:
        """Dimensionality ``m`` of each subspace."""
        if self._subdim is None:
            raise IndexNotBuiltError("ProductQuantizer has not been trained")
        return self._subdim

    @property
    def codebooks(self) -> List[np.ndarray]:
        """Per-subspace codebooks, each of shape ``(num_centroids, m)``."""
        if self._codebooks is None:
            raise IndexNotBuiltError("ProductQuantizer has not been trained")
        return self._codebooks

    def train(self, vectors: np.ndarray) -> None:
        """Train one codebook per subspace with Lloyd's k-means."""
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise VectorDatabaseError("Training data must be a non-empty 2-D array")
        dim = data.shape[1]
        if dim % self.num_subspaces != 0:
            raise DimensionMismatchError(
                f"Vector dimension {dim} is not divisible by num_subspaces {self.num_subspaces}"
            )
        self._dim = dim
        self._subdim = dim // self.num_subspaces
        codebooks: List[np.ndarray] = []
        for subspace in range(self.num_subspaces):
            columns = slice(subspace * self._subdim, (subspace + 1) * self._subdim)
            result = lloyd_kmeans(
                data[:, columns],
                num_clusters=self.num_centroids,
                max_iterations=self.kmeans_iterations,
                seed=self.seed + subspace,
            )
            centroids = result.centroids
            if centroids.shape[0] < self.num_centroids:
                # Pad degenerate codebooks (fewer points than centroids) by
                # repeating existing entries so code indices stay valid.
                repeats = int(np.ceil(self.num_centroids / centroids.shape[0]))
                centroids = np.tile(centroids, (repeats, 1))[: self.num_centroids]
            codebooks.append(centroids)
        self._codebooks = codebooks

    def to_state(self) -> Dict[str, np.ndarray]:
        """Trained codebooks as one ``(P, M, m)`` array for persistence."""
        return {"codebooks": np.stack(self.codebooks)}

    @classmethod
    def from_state(
        cls,
        arrays: Mapping[str, np.ndarray],
        num_subspaces: int,
        num_centroids: int,
        kmeans_iterations: int = 15,
        seed: int = 0,
    ) -> "ProductQuantizer":
        """Rebuild a trained quantizer from :meth:`to_state` output."""
        quantizer = cls(
            num_subspaces=num_subspaces,
            num_centroids=num_centroids,
            kmeans_iterations=kmeans_iterations,
            seed=seed,
        )
        stacked = np.asarray(arrays["codebooks"], dtype=np.float64)
        if stacked.ndim != 3 or stacked.shape[:2] != (num_subspaces, num_centroids):
            raise SnapshotCorruptionError(
                f"PQ codebooks must have shape ({num_subspaces}, {num_centroids}, m), "
                f"got {stacked.shape}"
            )
        quantizer._codebooks = [stacked[subspace] for subspace in range(num_subspaces)]
        quantizer._subdim = int(stacked.shape[2])
        quantizer._dim = quantizer._subdim * num_subspaces
        return quantizer

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Encode vectors into ``(n, P)`` arrays of centroid indices."""
        data = self._check_input(vectors)
        codes = np.empty((data.shape[0], self.num_subspaces), dtype=np.int32)
        for subspace, codebook in enumerate(self.codebooks):
            columns = slice(subspace * self.subspace_dim, (subspace + 1) * self.subspace_dim)
            block = data[:, columns]
            distances = (
                (block ** 2).sum(axis=1, keepdims=True)
                + (codebook ** 2).sum(axis=1)
                - 2.0 * block @ codebook.T
            )
            codes[:, subspace] = distances.argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from PQ codes."""
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.num_subspaces:
            raise DimensionMismatchError(
                f"codes must have shape (n, {self.num_subspaces}), got {codes.shape}"
            )
        reconstruction = np.empty((codes.shape[0], self.dim), dtype=np.float64)
        for subspace, codebook in enumerate(self.codebooks):
            columns = slice(subspace * self.subspace_dim, (subspace + 1) * self.subspace_dim)
            reconstruction[:, columns] = codebook[codes[:, subspace]]
        return reconstruction

    def inner_product_tables(self, query: np.ndarray) -> np.ndarray:
        """ADC lookup tables of the query against every codebook entry.

        Returns an array of shape ``(P, num_centroids)`` whose entry
        ``[p, c]`` is the dot product between the query's ``p``-th subvector
        and centroid ``c`` of subspace ``p``.  Scoring a stored code is then a
        table lookup and a sum — the "distance lookup-table" of Algorithm 1.
        """
        vector = np.asarray(query, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"query has dimension {vector.shape[0]}, expected {self.dim}"
            )
        return self.inner_product_tables_batch(vector[None, :])[0]

    def inner_product_tables_batch(self, queries: np.ndarray) -> np.ndarray:
        """ADC lookup tables for ``m`` queries at once.

        Returns an array of shape ``(m, P, num_centroids)``; each subspace's
        tables for the whole batch come from a single matrix product against
        that subspace's codebook, which is how the batched IVF-PQ search
        amortises table construction across queries.
        """
        batch = as_query_matrix(queries, self.dim)
        tables = np.empty(
            (batch.shape[0], self.num_subspaces, self.num_centroids), dtype=np.float64
        )
        for subspace, codebook in enumerate(self.codebooks):
            columns = slice(subspace * self.subspace_dim, (subspace + 1) * self.subspace_dim)
            tables[:, subspace, :] = batch[:, columns] @ codebook.T
        return tables

    def approximate_scores(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate inner-product scores of ``query`` against PQ codes."""
        tables = self.inner_product_tables(query)
        codes = np.asarray(codes)
        scores = np.zeros(codes.shape[0], dtype=np.float64)
        for subspace in range(self.num_subspaces):
            scores += tables[subspace, codes[:, subspace]]
        return scores

    def quantization_error(self, vectors: np.ndarray) -> float:
        """Mean squared reconstruction error over ``vectors``."""
        data = self._check_input(vectors)
        reconstructed = self.decode(self.encode(data))
        return float(((data - reconstructed) ** 2).sum(axis=1).mean())

    def _check_input(self, vectors: np.ndarray) -> np.ndarray:
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim == 1:
            data = data[None, :]
        if not self.is_trained:
            raise IndexNotBuiltError("ProductQuantizer has not been trained")
        if data.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"vectors have dimension {data.shape[1]}, expected {self.dim}"
            )
        return data
