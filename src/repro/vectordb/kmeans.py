"""Lloyd's k-means, used to train PQ codebooks and coarse quantizers.

The paper trains its product-quantization codebooks "using clustering
algorithms, such as Lloyd's iteration" (§V-B).  This is a plain NumPy
implementation with k-means++-style seeding, empty-cluster repair, and a
convergence tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VectorDatabaseError


@dataclass(frozen=True)
class KMeansResult:
    """Result of a k-means run.

    Attributes:
        centroids: ``(k, dim)`` cluster centres.
        assignments: ``(n,)`` index of the centroid assigned to each point.
        inertia: Sum of squared distances of points to their centroids.
        iterations: Number of Lloyd iterations actually executed.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int


def lloyd_kmeans(
    points: np.ndarray,
    num_clusters: int,
    max_iterations: int = 25,
    tolerance: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Cluster ``points`` into ``num_clusters`` groups with Lloyd's algorithm.

    Args:
        points: ``(n, dim)`` data matrix.
        num_clusters: Number of clusters ``k``; silently reduced to ``n`` when
            there are fewer points than requested clusters.
        max_iterations: Upper bound on Lloyd iterations.
        tolerance: Relative inertia improvement below which iteration stops.
        seed: Seed for the k-means++ style initialisation.

    Returns:
        A :class:`KMeansResult`.
    """
    data = np.asarray(points, dtype=np.float64)
    if data.ndim != 2:
        raise VectorDatabaseError(f"points must be 2-D, got shape {data.shape}")
    num_points = data.shape[0]
    if num_points == 0:
        raise VectorDatabaseError("Cannot run k-means on an empty point set")
    k = min(num_clusters, num_points)
    rng = np.random.default_rng(seed)

    centroids = _plus_plus_init(data, k, rng)
    assignments = np.zeros(num_points, dtype=np.int64)
    previous_inertia = np.inf
    iterations = 0

    while iterations < max_iterations:
        iterations += 1
        distances = _squared_distances(data, centroids)
        assignments = distances.argmin(axis=1)
        inertia = float(distances[np.arange(num_points), assignments].sum())

        for cluster in range(k):
            members = data[assignments == cluster]
            if len(members) == 0:
                # Re-seed an empty cluster at the point farthest from its centroid.
                farthest = int(distances.min(axis=1).argmax())
                centroids[cluster] = data[farthest]
            else:
                centroids[cluster] = members.mean(axis=0)

        if previous_inertia - inertia <= tolerance * max(previous_inertia, 1e-12):
            previous_inertia = inertia
            break
        previous_inertia = inertia

    distances = _squared_distances(data, centroids)
    assignments = distances.argmin(axis=1)
    inertia = float(distances[np.arange(num_points), assignments].sum())
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia,
        iterations=iterations,
    )


def _plus_plus_init(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to distance."""
    num_points = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(num_points))
    centroids[0] = data[first]
    closest = ((data - centroids[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = closest.sum()
        if total <= 0:
            choice = int(rng.integers(num_points))
        else:
            probabilities = closest / total
            choice = int(rng.choice(num_points, p=probabilities))
        centroids[index] = data[choice]
        distances = ((data - centroids[index]) ** 2).sum(axis=1)
        closest = np.minimum(closest, distances)
    return centroids


def _squared_distances(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances ``(n, k)``."""
    data_norms = (data ** 2).sum(axis=1, keepdims=True)
    centroid_norms = (centroids ** 2).sum(axis=1)
    cross = data @ centroids.T
    return np.maximum(data_norms + centroid_norms - 2.0 * cross, 0.0)
