"""Milvus-like facade managing named vector collections."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import IndexConfig
from repro.errors import CollectionExistsError, CollectionNotFoundError, SnapshotCorruptionError
from repro.utils.serialization import load_json, save_json
from repro.vectordb.collection import SearchHit, VectorCollection


class VectorDatabase:
    """A registry of :class:`VectorCollection` objects, keyed by name."""

    def __init__(self) -> None:
        self._collections: Dict[str, VectorCollection] = {}

    def create_collection(
        self, name: str, dim: int, config: IndexConfig | None = None
    ) -> VectorCollection:
        """Create a new collection; raises if the name is taken."""
        if name in self._collections:
            raise CollectionExistsError(f"Collection {name!r} already exists")
        collection = VectorCollection(name, dim, config)
        self._collections[name] = collection
        return collection

    def add_collection(self, collection: VectorCollection) -> VectorCollection:
        """Register an already-built collection (e.g. one loaded from disk)."""
        if collection.name in self._collections:
            raise CollectionExistsError(f"Collection {collection.name!r} already exists")
        self._collections[collection.name] = collection
        return collection

    def get_collection(self, name: str) -> VectorCollection:
        """Fetch an existing collection by name."""
        try:
            return self._collections[name]
        except KeyError as error:
            raise CollectionNotFoundError(f"Collection {name!r} does not exist") from error

    def has_collection(self, name: str) -> bool:
        """Whether a collection with ``name`` exists."""
        return name in self._collections

    def drop_collection(self, name: str) -> None:
        """Delete a collection; raises if it does not exist."""
        if name not in self._collections:
            raise CollectionNotFoundError(f"Collection {name!r} does not exist")
        del self._collections[name]

    def search(self, name: str, query: np.ndarray, k: int) -> List[SearchHit]:
        """Single-query search against a named collection."""
        return self.get_collection(name).search(query, k)

    def search_batch(
        self, name: str, queries: np.ndarray, k: int
    ) -> List[List[SearchHit]]:
        """Multi-query search against a named collection (one list per row)."""
        return self.get_collection(name).search_batch(queries, k)

    def list_collections(self) -> List[str]:
        """Names of all collections."""
        return sorted(self._collections)

    def total_entities(self) -> int:
        """Total number of vectors across every collection."""
        return sum(collection.num_entities for collection in self._collections.values())

    def save(self, path: str | Path) -> None:
        """Persist every collection to a directory tree.

        Collections land in numbered subdirectories (collection names are not
        required to be filesystem-safe); ``database.json`` records the
        mapping.
        """
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        entries = []
        for position, name in enumerate(self.list_collections()):
            subdir = f"collections/{position:04d}"
            self._collections[name].save(root / subdir)
            entries.append({"name": name, "path": subdir})
        save_json(root / "database.json", {"collections": entries})

    @classmethod
    def load(cls, path: str | Path) -> "VectorDatabase":
        """Restore a database saved by :meth:`save`."""
        root = Path(path)
        document = load_json(root / "database.json")
        database = cls()
        for entry in document.get("collections", []):
            collection = VectorCollection.load(root / str(entry["path"]))
            if collection.name != entry["name"]:
                raise SnapshotCorruptionError(
                    f"Collection at {entry['path']!r} claims name {collection.name!r}, "
                    f"manifest says {entry['name']!r}"
                )
            database.add_collection(collection)
        return database
