"""Common interface for ANN indexes (Flat, IVF-PQ, HNSW)."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import DimensionMismatchError, PersistenceError, VectorDatabaseError


@dataclass(frozen=True)
class IndexHit:
    """One search result: an internal integer id and its similarity score."""

    id: int
    score: float


def as_query_matrix(queries: np.ndarray, dim: int, context: str = "queries") -> np.ndarray:
    """Coerce a query batch to a float64 ``(m, dim)`` matrix or raise.

    A single 1-D vector is promoted to a batch of one.  Shared by every
    multi-query entry point (indexes, collections, the product quantizer) so
    batch-shape semantics cannot drift between layers.
    """
    batch = np.asarray(queries, dtype=np.float64)
    if batch.ndim == 1:
        batch = batch[None, :]
    if batch.ndim != 2 or batch.shape[1] != dim:
        raise DimensionMismatchError(
            f"Expected {context} of shape (m, {dim}), got {batch.shape}"
        )
    return batch


class VectorIndex(abc.ABC):
    """Abstract maximum-inner-product index over unit-norm vectors.

    All LOVO embeddings are L2-normalised, so maximum inner product equals
    maximum cosine similarity and minimum Euclidean distance (paper §V-A).
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise VectorDatabaseError("Index dimensionality must be positive")
        self._dim = dim

    @property
    def dim(self) -> int:
        """Vector dimensionality accepted by the index."""
        return self._dim

    @property
    @abc.abstractmethod
    def ntotal(self) -> int:
        """Number of vectors stored in the index."""

    @abc.abstractmethod
    def add(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        """Insert vectors with the given integer ids."""

    @abc.abstractmethod
    def build(self) -> None:
        """Finalise the index (train quantizers, build graphs); idempotent."""

    @abc.abstractmethod
    def search(self, query: np.ndarray, k: int) -> List[IndexHit]:
        """Return the top-``k`` hits by inner-product similarity.

        Every index follows the same edge-case contract: ``k <= 0`` and an
        empty index both yield ``[]``, and ``k > ntotal`` returns at most
        ``ntotal`` hits (approximate indexes may return fewer).
        """

    def search_batch(self, queries: np.ndarray, k: int) -> List[List[IndexHit]]:
        """Answer ``m`` queries at once; one hit list per query row.

        ``queries`` is an ``(m, dim)`` array.  The default implementation
        falls back to ``m`` sequential :meth:`search` calls; concrete indexes
        override it to amortise work across the batch (one matrix product on
        the flat index, shared coarse-quantizer scoring on IVF-PQ, shared
        validation and vector storage on HNSW).  The edge-case contract
        matches :meth:`search` per query row.
        """
        batch = self._validate_query_batch(queries)
        if k <= 0 or self.ntotal == 0:
            return [[] for _ in range(batch.shape[0])]
        return [self.search(row, k) for row in batch]

    def to_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Serialise the built index as ``(meta, arrays)``.

        ``meta`` is a JSON-serialisable dict whose ``"kind"`` key names the
        index family; ``arrays`` holds the NumPy payloads destined for an
        ``.npz`` archive.  Restoring with :meth:`from_state` must yield an
        index whose :meth:`search`/:meth:`search_batch` results are
        bit-identical to the original.  Implementations may finalise
        (:meth:`build`) the index first.
        """
        raise PersistenceError(
            f"{type(self).__name__} does not implement snapshot persistence"
        )

    @classmethod
    def from_state(
        cls,
        dim: int,
        config: object,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
    ) -> "VectorIndex":
        """Rebuild an index from :meth:`to_state` output without re-ingesting."""
        raise PersistenceError(f"{cls.__name__} does not implement snapshot persistence")

    def _validate(self, vectors: np.ndarray) -> np.ndarray:
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim == 1:
            data = data[None, :]
        if data.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"Expected vectors of dimension {self._dim}, got {data.shape[1]}"
            )
        return data

    def _validate_query(self, query: np.ndarray) -> np.ndarray:
        vector = np.asarray(query, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"Expected query of dimension {self._dim}, got {vector.shape[0]}"
            )
        return vector

    def _validate_query_batch(self, queries: np.ndarray) -> np.ndarray:
        return as_query_matrix(queries, self._dim)
