"""Common interface for ANN indexes (Flat, IVF-PQ, HNSW)."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import DimensionMismatchError, PersistenceError, VectorDatabaseError


@dataclass(frozen=True)
class IndexHit:
    """One search result: an internal integer id and its similarity score."""

    id: int
    score: float


def as_query_matrix(queries: np.ndarray, dim: int, context: str = "queries") -> np.ndarray:
    """Coerce a query batch to a float64 ``(m, dim)`` matrix or raise.

    A single 1-D vector is promoted to a batch of one.  Shared by every
    multi-query entry point (indexes, collections, the product quantizer) so
    batch-shape semantics cannot drift between layers.
    """
    batch = np.asarray(queries, dtype=np.float64)
    if batch.ndim == 1:
        batch = batch[None, :]
    if batch.ndim != 2 or batch.shape[1] != dim:
        raise DimensionMismatchError(
            f"Expected {context} of shape (m, {dim}), got {batch.shape}"
        )
    return batch


#: Fixed GEMM tile shape used by :func:`exact_scores`.  Every tile the BLAS
#: ever sees is exactly ``(_SCORE_ROW_BLOCK, dim) @ (dim, _SCORE_QUERY_BLOCK)``,
#: so kernel selection — and with it the floating-point reduction order —
#: cannot depend on how many vectors or queries a caller happens to hold.
_SCORE_ROW_BLOCK = 2048
_SCORE_QUERY_BLOCK = 8


def exact_scores(matrix: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Inner-product scores ``(num_vectors, num_queries)``, bit-deterministically.

    A plain ``queries @ matrix.T`` lets the BLAS pick its kernel from the
    operand shapes, and different kernels reduce over the shared dimension in
    different orders — so the same (vector, query) pair can score differently
    at the last ulp depending on how many *other* rows sit in the matrix.
    That breaks the sharded database's bit-exact-parity invariant: a shard
    holds a row-subset of the global matrix, so its scores must not depend on
    the subset's size.

    This helper instead runs the product in zero-padded tiles of one fixed
    shape.  Within a fixed-shape GEMM the result of each output element is
    position-independent (verified empirically for the padded-tile layout and
    pinned by the vectordb determinism tests), so every score depends only on
    the row and query contents — not on matrix size, query-batch size, or
    placement.  Zero rows/columns cost a bounded ~((block-1)/total) overhead
    only on the final tile.
    """
    num_rows, dim = matrix.shape
    num_queries = queries.shape[0]
    scores = np.empty((num_rows, num_queries), dtype=np.float64)
    query_tile = np.zeros((_SCORE_QUERY_BLOCK, dim), dtype=np.float64)
    for q_start in range(0, num_queries, _SCORE_QUERY_BLOCK):
        q_stop = min(q_start + _SCORE_QUERY_BLOCK, num_queries)
        width = q_stop - q_start
        query_tile[:width] = queries[q_start:q_stop]
        query_tile[width:] = 0.0
        for r_start in range(0, num_rows, _SCORE_ROW_BLOCK):
            r_stop = min(r_start + _SCORE_ROW_BLOCK, num_rows)
            chunk = matrix[r_start:r_stop]
            if chunk.shape[0] < _SCORE_ROW_BLOCK:
                row_tile = np.zeros((_SCORE_ROW_BLOCK, dim), dtype=np.float64)
                row_tile[: chunk.shape[0]] = chunk
                tile = row_tile @ query_tile.T
            else:
                tile = chunk @ query_tile.T
            scores[r_start:r_stop, q_start:q_stop] = tile[: chunk.shape[0], :width]
    return scores


class VectorIndex(abc.ABC):
    """Abstract maximum-inner-product index over unit-norm vectors.

    All LOVO embeddings are L2-normalised, so maximum inner product equals
    maximum cosine similarity and minimum Euclidean distance (paper §V-A).
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise VectorDatabaseError("Index dimensionality must be positive")
        self._dim = dim

    @property
    def dim(self) -> int:
        """Vector dimensionality accepted by the index."""
        return self._dim

    @property
    @abc.abstractmethod
    def ntotal(self) -> int:
        """Number of vectors stored in the index."""

    @abc.abstractmethod
    def add(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        """Insert vectors with the given integer ids."""

    @abc.abstractmethod
    def build(self) -> None:
        """Finalise the index (train quantizers, build graphs); idempotent."""

    @abc.abstractmethod
    def search(self, query: np.ndarray, k: int) -> List[IndexHit]:
        """Return the top-``k`` hits by inner-product similarity.

        Every index follows the same edge-case contract: ``k <= 0`` and an
        empty index both yield ``[]``, and ``k > ntotal`` returns at most
        ``ntotal`` hits (approximate indexes may return fewer).
        """

    def search_batch(self, queries: np.ndarray, k: int) -> List[List[IndexHit]]:
        """Answer ``m`` queries at once; one hit list per query row.

        ``queries`` is an ``(m, dim)`` array.  The default implementation
        falls back to ``m`` sequential :meth:`search` calls; concrete indexes
        override it to amortise work across the batch (one matrix product on
        the flat index, shared coarse-quantizer scoring on IVF-PQ, shared
        validation and vector storage on HNSW).  The edge-case contract
        matches :meth:`search` per query row.
        """
        batch = self._validate_query_batch(queries)
        if k <= 0 or self.ntotal == 0:
            return [[] for _ in range(batch.shape[0])]
        return [self.search(row, k) for row in batch]

    def to_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Serialise the built index as ``(meta, arrays)``.

        ``meta`` is a JSON-serialisable dict whose ``"kind"`` key names the
        index family; ``arrays`` holds the NumPy payloads destined for an
        ``.npz`` archive.  Restoring with :meth:`from_state` must yield an
        index whose :meth:`search`/:meth:`search_batch` results are
        bit-identical to the original.  Implementations may finalise
        (:meth:`build`) the index first.
        """
        raise PersistenceError(
            f"{type(self).__name__} does not implement snapshot persistence"
        )

    @classmethod
    def from_state(
        cls,
        dim: int,
        config: object,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
    ) -> "VectorIndex":
        """Rebuild an index from :meth:`to_state` output without re-ingesting."""
        raise PersistenceError(f"{cls.__name__} does not implement snapshot persistence")

    def _validate(self, vectors: np.ndarray) -> np.ndarray:
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim == 1:
            data = data[None, :]
        if data.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"Expected vectors of dimension {self._dim}, got {data.shape[1]}"
            )
        return data

    def _validate_query(self, query: np.ndarray) -> np.ndarray:
        vector = np.asarray(query, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"Expected query of dimension {self._dim}, got {vector.shape[0]}"
            )
        return vector

    def _validate_query_batch(self, queries: np.ndarray) -> np.ndarray:
        return as_query_matrix(queries, self._dim)
