"""Common interface for ANN indexes (Flat, IVF-PQ, HNSW)."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, VectorDatabaseError


@dataclass(frozen=True)
class IndexHit:
    """One search result: an internal integer id and its similarity score."""

    id: int
    score: float


class VectorIndex(abc.ABC):
    """Abstract maximum-inner-product index over unit-norm vectors.

    All LOVO embeddings are L2-normalised, so maximum inner product equals
    maximum cosine similarity and minimum Euclidean distance (paper §V-A).
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise VectorDatabaseError("Index dimensionality must be positive")
        self._dim = dim

    @property
    def dim(self) -> int:
        """Vector dimensionality accepted by the index."""
        return self._dim

    @property
    @abc.abstractmethod
    def ntotal(self) -> int:
        """Number of vectors stored in the index."""

    @abc.abstractmethod
    def add(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        """Insert vectors with the given integer ids."""

    @abc.abstractmethod
    def build(self) -> None:
        """Finalise the index (train quantizers, build graphs); idempotent."""

    @abc.abstractmethod
    def search(self, query: np.ndarray, k: int) -> List[IndexHit]:
        """Return the top-``k`` hits by inner-product similarity."""

    def _validate(self, vectors: np.ndarray) -> np.ndarray:
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim == 1:
            data = data[None, :]
        if data.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"Expected vectors of dimension {self._dim}, got {data.shape[1]}"
            )
        return data

    def _validate_query(self, query: np.ndarray) -> np.ndarray:
        vector = np.asarray(query, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self._dim:
            raise DimensionMismatchError(
                f"Expected query of dimension {self._dim}, got {vector.shape[0]}"
            )
        return vector
