"""Relational metadata store linked to the vector index by patch id.

The paper keeps "supplementary metadata such as key frame identifiers and
bounding box coordinates ... in a relational database" linked to the vector
database "through the shared patch ID" (§V-B).  This module implements that
relational side with SQLite (standard library), storing key frames and patch
records and answering the lookups the query strategy needs: patch → frame /
bounding box, and frame → all of its patch detections.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.errors import MetadataError
from repro.utils.geometry import BoundingBox


@dataclass(frozen=True)
class PatchRecord:
    """Relational record of one stored patch detection."""

    patch_id: str
    frame_id: str
    video_id: str
    patch_index: int
    box: BoundingBox
    objectness: float


@dataclass(frozen=True)
class FrameRecord:
    """Relational record of one key frame."""

    frame_id: str
    video_id: str
    frame_index: int
    timestamp: float


class MetadataStore:
    """SQLite-backed store for key-frame and patch metadata."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = str(path) if path is not None else ":memory:"
        self._connection = sqlite3.connect(self._path)
        self._connection.execute("PRAGMA journal_mode = MEMORY")
        self._create_tables()

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    def __enter__(self) -> "MetadataStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _create_tables(self) -> None:
        with self._connection:
            self._connection.execute(
                """
                CREATE TABLE IF NOT EXISTS frames (
                    frame_id TEXT PRIMARY KEY,
                    video_id TEXT NOT NULL,
                    frame_index INTEGER NOT NULL,
                    timestamp REAL NOT NULL
                )
                """
            )
            self._connection.execute(
                """
                CREATE TABLE IF NOT EXISTS patches (
                    patch_id TEXT PRIMARY KEY,
                    frame_id TEXT NOT NULL,
                    video_id TEXT NOT NULL,
                    patch_index INTEGER NOT NULL,
                    x REAL NOT NULL,
                    y REAL NOT NULL,
                    w REAL NOT NULL,
                    h REAL NOT NULL,
                    objectness REAL NOT NULL,
                    FOREIGN KEY (frame_id) REFERENCES frames (frame_id)
                )
                """
            )
            self._connection.execute(
                "CREATE INDEX IF NOT EXISTS idx_patches_frame ON patches (frame_id)"
            )

    def add_frames(self, frames: Iterable[FrameRecord]) -> None:
        """Insert (or replace) key-frame records."""
        rows = [
            (record.frame_id, record.video_id, record.frame_index, record.timestamp)
            for record in frames
        ]
        with self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO frames VALUES (?, ?, ?, ?)", rows
            )

    def add_patches(self, patches: Iterable[PatchRecord]) -> None:
        """Insert (or replace) patch records."""
        rows = [
            (
                record.patch_id,
                record.frame_id,
                record.video_id,
                record.patch_index,
                record.box.x,
                record.box.y,
                record.box.w,
                record.box.h,
                record.objectness,
            )
            for record in patches
        ]
        with self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO patches VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)", rows
            )

    def get_patch(self, patch_id: str) -> PatchRecord:
        """Fetch one patch record; raises :class:`MetadataError` if missing."""
        cursor = self._connection.execute(
            "SELECT patch_id, frame_id, video_id, patch_index, x, y, w, h, objectness "
            "FROM patches WHERE patch_id = ?",
            (patch_id,),
        )
        row = cursor.fetchone()
        if row is None:
            raise MetadataError(f"Patch {patch_id!r} not found in metadata store")
        return self._row_to_patch(row)

    def get_patches(self, patch_ids: Sequence[str]) -> List[PatchRecord]:
        """Fetch several patch records, preserving the requested order."""
        return [self.get_patch(patch_id) for patch_id in patch_ids]

    def patches_for_frame(self, frame_id: str) -> List[PatchRecord]:
        """All patch records stored for a frame, ordered by patch index."""
        cursor = self._connection.execute(
            "SELECT patch_id, frame_id, video_id, patch_index, x, y, w, h, objectness "
            "FROM patches WHERE frame_id = ? ORDER BY patch_index",
            (frame_id,),
        )
        return [self._row_to_patch(row) for row in cursor.fetchall()]

    def get_frame(self, frame_id: str) -> Optional[FrameRecord]:
        """Fetch a frame record, or ``None`` if it was never stored."""
        cursor = self._connection.execute(
            "SELECT frame_id, video_id, frame_index, timestamp FROM frames WHERE frame_id = ?",
            (frame_id,),
        )
        row = cursor.fetchone()
        if row is None:
            return None
        return FrameRecord(
            frame_id=row[0], video_id=row[1], frame_index=int(row[2]), timestamp=float(row[3])
        )

    def list_frames(self) -> List[FrameRecord]:
        """All stored key frames ordered by video and frame index."""
        cursor = self._connection.execute(
            "SELECT frame_id, video_id, frame_index, timestamp FROM frames "
            "ORDER BY video_id, frame_index"
        )
        return [
            FrameRecord(frame_id=row[0], video_id=row[1], frame_index=int(row[2]), timestamp=float(row[3]))
            for row in cursor.fetchall()
        ]

    def count_patches(self) -> int:
        """Number of patch records stored."""
        cursor = self._connection.execute("SELECT COUNT(*) FROM patches")
        return int(cursor.fetchone()[0])

    def count_frames(self) -> int:
        """Number of key-frame records stored."""
        cursor = self._connection.execute("SELECT COUNT(*) FROM frames")
        return int(cursor.fetchone()[0])

    @staticmethod
    def _row_to_patch(row: tuple) -> PatchRecord:
        return PatchRecord(
            patch_id=row[0],
            frame_id=row[1],
            video_id=row[2],
            patch_index=int(row[3]),
            box=BoundingBox(float(row[4]), float(row[5]), float(row[6]), float(row[7])),
            objectness=float(row[8]),
        )
