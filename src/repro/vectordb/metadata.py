"""Relational metadata store linked to the vector index by patch id.

The paper keeps "supplementary metadata such as key frame identifiers and
bounding box coordinates ... in a relational database" linked to the vector
database "through the shared patch ID" (§V-B).  This module implements that
relational side with SQLite (standard library), storing key frames and patch
records and answering the lookups the query strategy needs: patch → frame /
bounding box, and frame → all of its patch detections.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import MetadataError, SnapshotCorruptionError
from repro.utils.geometry import BoundingBox
from repro.utils.serialization import load_arrays, save_arrays
from repro.utils.locking import create_rlock


@dataclass(frozen=True)
class PatchRecord:
    """Relational record of one stored patch detection."""

    patch_id: str
    frame_id: str
    video_id: str
    patch_index: int
    box: BoundingBox
    objectness: float


@dataclass(frozen=True)
class FrameRecord:
    """Relational record of one key frame."""

    frame_id: str
    video_id: str
    frame_index: int
    timestamp: float


def _string_array(values: Sequence[str]) -> np.ndarray:
    """Unicode NumPy array from ``values`` (empty input stays a string dtype)."""
    if not values:
        return np.zeros(0, dtype="<U1")
    return np.asarray(list(values), dtype=np.str_)


class MetadataStore:
    """SQLite-backed store for key-frame and patch metadata."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = str(path) if path is not None else ":memory:"
        # Streaming ingest writes from a background worker thread while query
        # threads read, so the connection must be shareable across threads;
        # the lock serialises every statement on it (sqlite3 connections are
        # not safe for genuinely concurrent use even with the check off).
        self._connection = sqlite3.connect(self._path, check_same_thread=False)
        self._lock = create_rlock("MetadataStore._lock")
        self._connection.execute("PRAGMA journal_mode = MEMORY")
        self._create_tables()

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "MetadataStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _create_tables(self) -> None:
        with self._lock, self._connection:
            self._connection.execute(
                """
                CREATE TABLE IF NOT EXISTS frames (
                    frame_id TEXT PRIMARY KEY,
                    video_id TEXT NOT NULL,
                    frame_index INTEGER NOT NULL,
                    timestamp REAL NOT NULL
                )
                """
            )
            self._connection.execute(
                """
                CREATE TABLE IF NOT EXISTS patches (
                    patch_id TEXT PRIMARY KEY,
                    frame_id TEXT NOT NULL,
                    video_id TEXT NOT NULL,
                    patch_index INTEGER NOT NULL,
                    x REAL NOT NULL,
                    y REAL NOT NULL,
                    w REAL NOT NULL,
                    h REAL NOT NULL,
                    objectness REAL NOT NULL,
                    FOREIGN KEY (frame_id) REFERENCES frames (frame_id)
                )
                """
            )
            self._connection.execute(
                "CREATE INDEX IF NOT EXISTS idx_patches_frame ON patches (frame_id)"
            )

    def add_frames(self, frames: Iterable[FrameRecord]) -> None:
        """Insert (or replace) key-frame records."""
        rows = [
            (record.frame_id, record.video_id, record.frame_index, record.timestamp)
            for record in frames
        ]
        with self._lock, self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO frames VALUES (?, ?, ?, ?)", rows
            )

    def add_patches(self, patches: Iterable[PatchRecord]) -> None:
        """Insert (or replace) patch records."""
        rows = [
            (
                record.patch_id,
                record.frame_id,
                record.video_id,
                record.patch_index,
                record.box.x,
                record.box.y,
                record.box.w,
                record.box.h,
                record.objectness,
            )
            for record in patches
        ]
        with self._lock, self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO patches VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)", rows
            )

    def _fetchone(self, sql: str, params: tuple = ()) -> tuple | None:
        with self._lock:
            return self._connection.execute(sql, params).fetchone()

    def _fetchall(self, sql: str, params: tuple = ()) -> List[tuple]:
        with self._lock:
            return self._connection.execute(sql, params).fetchall()

    def get_patch(self, patch_id: str) -> PatchRecord:
        """Fetch one patch record; raises :class:`MetadataError` if missing."""
        row = self._fetchone(
            "SELECT patch_id, frame_id, video_id, patch_index, x, y, w, h, objectness "
            "FROM patches WHERE patch_id = ?",
            (patch_id,),
        )
        if row is None:
            raise MetadataError(f"Patch {patch_id!r} not found in metadata store")
        return self._row_to_patch(row)

    def get_patches(self, patch_ids: Sequence[str]) -> List[PatchRecord]:
        """Fetch several patch records, preserving the requested order."""
        return [self.get_patch(patch_id) for patch_id in patch_ids]

    def patches_for_frame(self, frame_id: str) -> List[PatchRecord]:
        """All patch records stored for a frame, ordered by patch index."""
        rows = self._fetchall(
            "SELECT patch_id, frame_id, video_id, patch_index, x, y, w, h, objectness "
            "FROM patches WHERE frame_id = ? ORDER BY patch_index",
            (frame_id,),
        )
        return [self._row_to_patch(row) for row in rows]

    def get_frame(self, frame_id: str) -> Optional[FrameRecord]:
        """Fetch a frame record, or ``None`` if it was never stored."""
        row = self._fetchone(
            "SELECT frame_id, video_id, frame_index, timestamp FROM frames WHERE frame_id = ?",
            (frame_id,),
        )
        if row is None:
            return None
        return FrameRecord(
            frame_id=row[0], video_id=row[1], frame_index=int(row[2]), timestamp=float(row[3])
        )

    def list_frames(self) -> List[FrameRecord]:
        """All stored key frames ordered by video and frame index."""
        return [
            FrameRecord(frame_id=row[0], video_id=row[1], frame_index=int(row[2]), timestamp=float(row[3]))
            for row in self._fetchall(
                "SELECT frame_id, video_id, frame_index, timestamp FROM frames "
                "ORDER BY video_id, frame_index"
            )
        ]

    def count_patches(self) -> int:
        """Number of patch records stored."""
        row = self._fetchone("SELECT COUNT(*) FROM patches")
        assert row is not None
        return int(row[0])

    def count_frames(self) -> int:
        """Number of key-frame records stored."""
        row = self._fetchone("SELECT COUNT(*) FROM frames")
        assert row is not None
        return int(row[0])

    def list_patches(self) -> List[PatchRecord]:
        """All stored patch records ordered by frame and patch index."""
        rows = self._fetchall(
            "SELECT patch_id, frame_id, video_id, patch_index, x, y, w, h, objectness "
            "FROM patches ORDER BY frame_id, patch_index, patch_id"
        )
        return [self._row_to_patch(row) for row in rows]

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Columnar array form of every frame and patch record.

        The snapshot persistence subsystem stores these in one ``.npz``
        archive; :meth:`from_arrays` rebuilds an equivalent store (SQLite
        ``REAL`` columns are IEEE doubles, so floats round-trip exactly).
        """
        frames = self.list_frames()
        patches = self.list_patches()
        return {
            "frame_ids": _string_array([record.frame_id for record in frames]),
            "frame_video_ids": _string_array([record.video_id for record in frames]),
            "frame_indexes": np.asarray(
                [record.frame_index for record in frames], dtype=np.int64
            ),
            "frame_timestamps": np.asarray(
                [record.timestamp for record in frames], dtype=np.float64
            ),
            "patch_ids": _string_array([record.patch_id for record in patches]),
            "patch_frame_ids": _string_array([record.frame_id for record in patches]),
            "patch_video_ids": _string_array([record.video_id for record in patches]),
            "patch_indexes": np.asarray(
                [record.patch_index for record in patches], dtype=np.int64
            ),
            "patch_boxes": (
                np.asarray([record.box.to_array() for record in patches], dtype=np.float64)
                if patches
                else np.zeros((0, 4), dtype=np.float64)
            ),
            "patch_objectness": np.asarray(
                [record.objectness for record in patches], dtype=np.float64
            ),
        }

    @classmethod
    def from_arrays(
        cls, arrays: Dict[str, np.ndarray], path: str | Path | None = None
    ) -> "MetadataStore":
        """Rebuild a store from :meth:`to_arrays` output."""
        required = {
            "frame_ids", "frame_video_ids", "frame_indexes", "frame_timestamps",
            "patch_ids", "patch_frame_ids", "patch_video_ids", "patch_indexes",
            "patch_boxes", "patch_objectness",
        }
        missing = required - set(arrays)
        if missing:
            raise SnapshotCorruptionError(
                f"Metadata arrays are missing columns: {sorted(missing)}"
            )
        num_frames = {int(arrays[name].shape[0]) for name in
                      ("frame_ids", "frame_video_ids", "frame_indexes", "frame_timestamps")}
        num_patches = {int(arrays[name].shape[0]) for name in
                       ("patch_ids", "patch_frame_ids", "patch_video_ids",
                        "patch_indexes", "patch_boxes", "patch_objectness")}
        if len(num_frames) != 1 or len(num_patches) != 1:
            raise SnapshotCorruptionError("Metadata columns disagree on record count")
        store = cls(path)
        # Feed SQLite row tuples straight from the columnar arrays instead of
        # materialising record dataclasses: warm-start load time is dominated
        # by this method for large snapshots.
        frame_rows = list(
            zip(
                (str(value) for value in arrays["frame_ids"].tolist()),
                (str(value) for value in arrays["frame_video_ids"].tolist()),
                arrays["frame_indexes"].tolist(),
                arrays["frame_timestamps"].tolist(),
            )
        )
        boxes = np.asarray(arrays["patch_boxes"], dtype=np.float64).reshape(-1, 4)
        patch_rows = [
            (str(patch_id), str(frame_id), str(video_id), patch_index,
             box[0], box[1], box[2], box[3], objectness)
            for patch_id, frame_id, video_id, patch_index, box, objectness in zip(
                arrays["patch_ids"].tolist(),
                arrays["patch_frame_ids"].tolist(),
                arrays["patch_video_ids"].tolist(),
                arrays["patch_indexes"].tolist(),
                boxes.tolist(),
                arrays["patch_objectness"].tolist(),
            )
        ]
        with store._lock, store._connection:
            store._connection.executemany(
                "INSERT OR REPLACE INTO frames VALUES (?, ?, ?, ?)", frame_rows
            )
            store._connection.executemany(
                "INSERT OR REPLACE INTO patches VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                patch_rows,
            )
        return store

    def save(self, path: str | Path) -> None:
        """Persist every record to one ``.npz`` archive at ``path``."""
        save_arrays(path, self.to_arrays())

    @classmethod
    def load(cls, path: str | Path) -> "MetadataStore":
        """Rebuild an in-memory store from a :meth:`save` archive."""
        return cls.from_arrays(load_arrays(path))

    @staticmethod
    def _row_to_patch(row: tuple) -> PatchRecord:
        return PatchRecord(
            patch_id=row[0],
            frame_id=row[1],
            video_id=row[2],
            patch_index=int(row[3]),
            box=BoundingBox(float(row[4]), float(row[5]), float(row[6]), float(row[7])),
            objectness=float(row[8]),
        )
