"""Vector collection: named set of vectors with string primary keys.

A collection is the Milvus-style unit the rest of the system talks to: it
owns an ANN index (Flat, IVF-PQ, or HNSW per its :class:`~repro.config.
IndexConfig`), maps external string ids (patch ids) to internal integer ids,
and carries an optional metadata dict per entity for convenience.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Type

import numpy as np

from repro.config import IndexConfig
from repro.errors import SnapshotCorruptionError, VectorDatabaseError
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json
from repro.vectordb.base import IndexHit, VectorIndex, as_query_matrix, exact_scores
from repro.vectordb.flat import FlatIndex
from repro.vectordb.hnsw import HNSWIndex
from repro.vectordb.ivfpq import IVFPQIndex
from repro.utils.locking import create_rlock


@dataclass(frozen=True)
class SearchHit:
    """One collection search result."""

    id: str
    score: float
    metadata: Mapping[str, object] = field(default_factory=dict)


#: Index families by the ``"kind"`` tag their serialised state carries.
INDEX_KINDS: Dict[str, Type[VectorIndex]] = {
    "flat": FlatIndex,
    "hnsw": HNSWIndex,
    "ivfpq": IVFPQIndex,
}


def build_index(dim: int, config: IndexConfig) -> VectorIndex:
    """Instantiate the ANN index described by ``config``."""
    if config.index_type == "flat":
        return FlatIndex(dim)
    if config.index_type == "hnsw":
        return HNSWIndex(dim, config)
    return IVFPQIndex(dim, config)


def restore_index(
    dim: int,
    config: IndexConfig,
    meta: Mapping[str, object],
    arrays: Mapping[str, np.ndarray],
) -> VectorIndex:
    """Rebuild a serialised index, dispatching on its ``"kind"`` tag."""
    kind = str(meta.get("kind", ""))
    try:
        family = INDEX_KINDS[kind]
    except KeyError as error:
        raise SnapshotCorruptionError(f"Unknown index kind {kind!r} in snapshot") from error
    return family.from_state(dim, config, meta, arrays)


class VectorCollection:
    """A named, indexable collection of unit-norm vectors."""

    def __init__(self, name: str, dim: int, config: IndexConfig | None = None) -> None:
        if not name:
            raise VectorDatabaseError("Collection name must be non-empty")
        if dim <= 0:
            raise VectorDatabaseError("Collection dimensionality must be positive")
        self._name = name
        self._dim = dim
        self._config = config or IndexConfig()
        self._index = build_index(dim, self._config)
        self._external_to_internal: Dict[str, int] = {}
        self._internal_to_external: List[str] = []
        self._metadata: List[Mapping[str, object]] = []
        self._vectors: List[np.ndarray] = []
        self._built = False
        self._insert_lock = create_rlock("VectorCollection._insert_lock")

    @property
    def name(self) -> str:
        """Collection name."""
        return self._name

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def index_type(self) -> str:
        """Which ANN index backs the collection."""
        return self._config.index_type

    @property
    def config(self) -> IndexConfig:
        """The index configuration."""
        return self._config

    @property
    def num_entities(self) -> int:
        """Number of stored vectors."""
        return len(self._internal_to_external)

    def insert(  # lovo: ignore[LOVO005] the id maps/metadata/vectors ARE the stored corpus
        self,
        ids: Sequence[str],
        vectors: np.ndarray,
        metadata: Optional[Sequence[Mapping[str, object]]] = None,
    ) -> None:
        """Insert entities; ids must be unique within the collection."""
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim == 1:
            data = data[None, :]
        if data.shape[0] != len(ids):
            raise VectorDatabaseError(
                f"Got {len(ids)} ids for {data.shape[0]} vectors"
            )
        if data.shape[1] != self._dim:
            raise VectorDatabaseError(
                f"Collection {self._name!r} stores {self._dim}-d vectors, got {data.shape[1]}-d"
            )
        if metadata is not None and len(metadata) != len(ids):
            raise VectorDatabaseError("metadata length must match ids length")

        # Writers are serialised; concurrent searches stay lock-free.  The id
        # maps and metadata are appended *before* the index sees the new
        # internal ids, so any hit a racing search gets back from the index
        # already resolves to a complete (external id, metadata, vector) row —
        # never a torn read.
        with self._insert_lock:
            internal_ids: List[int] = []
            for position, external_id in enumerate(ids):
                if external_id in self._external_to_internal:
                    raise VectorDatabaseError(
                        f"Duplicate id {external_id!r} in collection {self._name!r}"
                    )
                internal = len(self._internal_to_external)
                self._external_to_internal[external_id] = internal
                self._internal_to_external.append(external_id)
                self._metadata.append(dict(metadata[position]) if metadata is not None else {})
                self._vectors.append(data[position])
                internal_ids.append(internal)
            self._index.add(internal_ids, data)
            self._built = False

    def flush(self) -> None:
        """Build (train) the underlying index; called automatically on search."""
        # Serialised against insert (and against other flushes): two racing
        # first-searches must not both run an IVFPQ training pass, and
        # ``_built`` must not be set back to True over an insert that just
        # cleared it.  The RLock keeps flush-under-insert re-entrant.
        with self._insert_lock:
            if self.num_entities == 0 or self._built:
                return
            self._index.build()
            self._built = True

    def search(self, query: np.ndarray, k: int) -> List[SearchHit]:
        """ANN search returning external ids, scores, and metadata."""
        if self.num_entities == 0 or k <= 0:
            return []
        if not self._built:
            self.flush()
        hits = self._index.search(np.asarray(query, dtype=np.float64), k)
        return [self._to_search_hit(hit) for hit in hits]

    def search_batch(self, queries: np.ndarray, k: int) -> List[List[SearchHit]]:
        """ANN search for ``m`` queries at once; one hit list per query row.

        Delegates to the index's multi-query search so the per-batch work
        (matrix products, coarse-quantizer scoring) is shared across queries.
        """
        batch = self._as_query_matrix(queries)
        if self.num_entities == 0 or k <= 0:
            return [[] for _ in range(batch.shape[0])]
        if not self._built:
            self.flush()
        return [
            [self._to_search_hit(hit) for hit in row]
            for row in self._index.search_batch(batch, k)
        ]

    def search_exhaustive(self, query: np.ndarray, k: int) -> List[SearchHit]:
        """Exact brute-force search regardless of the configured index.

        Used by the "w/o ANNS" ablation of Table IV.
        """
        vector = np.asarray(query, dtype=np.float64).reshape(-1)
        return self.search_exhaustive_batch(vector[None, :], k)[0]

    def search_exhaustive_batch(self, queries: np.ndarray, k: int) -> List[List[SearchHit]]:
        """Exact brute-force multi-query search (batched w/o-ANNS ablation)."""
        batch = self._as_query_matrix(queries)
        if self.num_entities == 0 or k <= 0:
            return [[] for _ in range(batch.shape[0])]
        matrix = np.vstack(self._vectors)
        scores = exact_scores(matrix, batch).T
        k = min(k, matrix.shape[0])
        results: List[List[SearchHit]] = []
        for row in scores:
            top = np.argpartition(-row, k - 1)[:k]
            top = top[np.argsort(-row[top])]
            results.append([
                SearchHit(
                    id=self._internal_to_external[int(i)],
                    score=float(row[i]),
                    metadata=self._metadata[int(i)],
                )
                for i in top
            ])
        return results

    def _to_search_hit(self, hit: IndexHit) -> SearchHit:
        return SearchHit(
            id=self._internal_to_external[hit.id],
            score=hit.score,
            metadata=self._metadata[hit.id],
        )

    def _as_query_matrix(self, queries: np.ndarray) -> np.ndarray:
        return as_query_matrix(
            queries, self._dim, context=f"collection {self._name!r} queries"
        )

    def get_vector(self, external_id: str) -> np.ndarray:
        """Return the stored vector for an id."""
        try:
            internal = self._external_to_internal[external_id]
        except KeyError as error:
            raise VectorDatabaseError(
                f"Id {external_id!r} not found in collection {self._name!r}"
            ) from error
        return self._vectors[internal]

    def get_metadata(self, external_id: str) -> Mapping[str, object]:
        """Return the metadata dict stored for an id."""
        try:
            internal = self._external_to_internal[external_id]
        except KeyError as error:
            raise VectorDatabaseError(
                f"Id {external_id!r} not found in collection {self._name!r}"
            ) from error
        return self._metadata[internal]

    def ids(self) -> List[str]:
        """All external ids in insertion order."""
        return list(self._internal_to_external)

    def save(self, path: str | Path) -> None:
        """Persist the collection (vectors, ids, metadata, built index) to a
        directory.

        The index is finalised first so the serialised state answers queries
        identically to the in-memory collection; :meth:`load` restores it
        without replaying any inserts.
        """
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        if self.num_entities:
            self.flush()
            index_meta, index_arrays = self._index.to_state()
            save_arrays(root / "index.npz", index_arrays)
        else:
            index_meta = None
        save_json(
            root / "collection.json",
            {
                "name": self._name,
                "dim": self._dim,
                "num_entities": self.num_entities,
                "index_config": asdict(self._config),
                "index_meta": index_meta,
                "entity_metadata": [dict(entry) for entry in self._metadata],
            },
        )
        entities: Dict[str, np.ndarray] = {
            "ids": (
                np.asarray(self._internal_to_external, dtype=np.str_)
                if self._internal_to_external
                else np.zeros(0, dtype="<U1")
            ),
        }
        # When the index state already carries the raw vectors in insertion
        # order (flat, HNSW), storing them again here would double the
        # snapshot's dominant payload; load() pulls them from the index.
        if index_meta is None or "raw_vectors" not in index_meta:
            entities["vectors"] = (
                np.vstack(self._vectors)
                if self._vectors
                else np.zeros((0, self._dim), dtype=np.float64)
            )
        save_arrays(root / "entities.npz", entities)

    @classmethod
    def load(cls, path: str | Path) -> "VectorCollection":
        """Restore a collection saved by :meth:`save`."""
        root = Path(path)
        document = load_json(root / "collection.json")
        config = IndexConfig(**document["index_config"])
        collection = cls(str(document["name"]), int(document["dim"]), config)
        entities = load_arrays(root / "entities.npz")
        ids = [str(external_id) for external_id in entities["ids"]]
        metadata = document.get("entity_metadata") or []
        index_meta = document.get("index_meta")
        index_arrays = None
        if ids:
            if index_meta is None:
                raise SnapshotCorruptionError(
                    f"Collection {document['name']!r} has entities but no index state"
                )
            index_arrays = load_arrays(root / "index.npz")
        if "vectors" in entities:
            vectors = entities["vectors"]
        else:
            raw_key = (index_meta or {}).get("raw_vectors")
            if index_arrays is None or raw_key not in (index_arrays or {}):
                raise SnapshotCorruptionError(
                    f"Collection {document['name']!r} snapshot stores no raw vectors"
                )
            vectors = index_arrays[str(raw_key)]
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or (vectors.shape[0] and vectors.shape[1] != collection._dim):
            raise SnapshotCorruptionError(
                f"Collection {document['name']!r} vectors must have shape "
                f"(n, {collection._dim}), got {vectors.shape}"
            )
        if not (len(ids) == vectors.shape[0] == len(metadata) == int(document["num_entities"])):
            raise SnapshotCorruptionError(
                f"Collection {document['name']!r} snapshot is inconsistent: "
                f"{len(ids)} ids, {vectors.shape[0]} vectors, {len(metadata)} metadata entries"
            )
        collection._internal_to_external = ids
        collection._external_to_internal = {
            external_id: position for position, external_id in enumerate(ids)
        }
        if len(collection._external_to_internal) != len(ids):
            raise SnapshotCorruptionError(
                f"Collection {document['name']!r} snapshot contains duplicate ids"
            )
        collection._metadata = [dict(entry) for entry in metadata]
        collection._vectors = [row for row in vectors]
        if ids:
            assert index_meta is not None and index_arrays is not None
            collection._index = restore_index(collection._dim, config, index_meta, index_arrays)
            collection._built = True
        return collection

    def storage_bytes(self) -> int:
        """Approximate memory footprint of the raw vectors (for reporting)."""
        return self.num_entities * self._dim * 8
