"""Hierarchical Navigable Small World graph index — the LOVO(HNSW) variant.

A straightforward HNSW implementation over inner-product similarity:

* every inserted element draws a maximum layer from a geometric distribution;
* on insertion the graph is greedily descended from the entry point to the
  element's top layer, then an ``ef_construction``-wide beam search selects
  neighbours on each layer, keeping at most ``M`` (``2M`` on layer 0`) links;
* search descends greedily to layer 0 and runs an ``ef_search``-wide beam
  search there.

This reproduces the latency/recall profile Table V attributes to graph-based
indexing: fast searches with accuracy close to (but occasionally below)
brute force.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.config import IndexConfig
from repro.errors import SnapshotCorruptionError, VectorDatabaseError
from repro.obs.trace import record_span, tracing_active
from repro.vectordb.base import IndexHit, VectorIndex
from repro.utils.locking import create_lock


class HNSWIndex(VectorIndex):
    """Graph-based approximate maximum-inner-product index."""

    def __init__(self, dim: int, config: IndexConfig | None = None, seed: int = 0) -> None:
        super().__init__(dim)
        self._config = config or IndexConfig()
        self._m = self._config.hnsw_m
        self._ef_construction = self._config.hnsw_ef_construction
        self._ef_search = self._config.hnsw_ef_search
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._write_lock = create_lock("HNSWIndex._write_lock")
        self._level_multiplier = 1.0 / np.log(max(self._m, 2))
        self._vectors: List[np.ndarray] = []
        self._external_ids: List[int] = []
        # One adjacency dict per layer: node -> neighbour list.
        self._layers: List[Dict[int, List[int]]] = []
        self._node_levels: List[int] = []
        self._entry_point: int | None = None

    @property
    def ntotal(self) -> int:
        return len(self._vectors)

    @property
    def ef_search(self) -> int:
        """Beam width used at query time."""
        return self._ef_search

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        data = self._validate(vectors)
        if len(ids) != data.shape[0]:
            raise VectorDatabaseError(f"Got {len(ids)} ids for {data.shape[0]} vectors")
        # Serialise writers: graph wiring is multi-step, and two interleaved
        # inserts could cross-link half-constructed nodes.  Readers stay
        # lock-free — every mutation in _insert publishes whole lists/values,
        # so a concurrent search sees either the pre- or post-insert graph.
        with self._write_lock:
            for external_id, vector in zip(ids, data):
                self._insert(int(external_id), vector)

    def build(self) -> None:
        """HNSW builds incrementally on insert; nothing further to do."""

    def search(self, query: np.ndarray, k: int) -> List[IndexHit]:
        if k <= 0 or not self._vectors or self._entry_point is None:
            return []
        vector = self._validate_query(query)
        if not tracing_active():
            return self._search_validated(vector, k)
        started = time.perf_counter()
        hits = self._search_validated(vector, k)
        record_span(
            "graph_search",
            started,
            time.perf_counter(),
            num_queries=1,
            ef_search=self._ef_search,
        )
        return hits

    def search_batch(self, queries: np.ndarray, k: int) -> List[List[IndexHit]]:
        """Answer ``m`` queries with one validation pass and shared graph state.

        The beam search itself is inherently per-query, but the batch entry
        point validates the whole ``(m, dim)`` block once and starts every
        query from the same entry point, so the per-call overhead of the
        sequential loop is amortised.  Each row runs exactly the same
        algorithm as :meth:`search`, so results match query for query.
        """
        batch = self._validate_query_batch(queries)
        if k <= 0 or not self._vectors or self._entry_point is None:
            return [[] for _ in range(batch.shape[0])]
        if not tracing_active():
            return [self._search_validated(row, k) for row in batch]
        started = time.perf_counter()
        results = [self._search_validated(row, k) for row in batch]
        record_span(
            "graph_search",
            started,
            time.perf_counter(),
            num_queries=batch.shape[0],
            ef_search=self._ef_search,
        )
        return results

    def _search_validated(self, vector: np.ndarray, k: int) -> List[IndexHit]:
        """Greedy descent plus layer-0 beam search for one validated query."""
        assert self._entry_point is not None
        current = self._entry_point
        for layer in range(len(self._layers) - 1, 0, -1):
            current = self._greedy_descend(vector, current, layer)
        candidates = self._search_layer(vector, [current], 0, max(self._ef_search, k))
        ranked = sorted(candidates, key=lambda node: -self._score(vector, node))[:k]
        return [
            IndexHit(id=self._external_ids[node], score=self._score(vector, node))
            for node in ranked
        ]

    def to_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Serialise vectors, ids, node levels, and the full layer graphs.

        Each layer's adjacency dict is flattened to three arrays (present
        nodes, CSR-style offsets, concatenated neighbour lists) so the graph
        restores exactly — searches over a loaded index visit the same nodes
        in the same order as the original.  ``raw_vectors`` tells the owning
        collection that ``vectors`` holds the raw vectors in insertion order,
        so it need not store its own copy.
        """
        meta: Dict[str, object] = {
            "kind": "hnsw",
            "raw_vectors": "vectors",
            "entry_point": -1 if self._entry_point is None else int(self._entry_point),
            "num_layers": len(self._layers),
            "seed": self._seed,
            # One geometric level was drawn per insert; recorded so a loaded
            # index can fast-forward its RNG and keep future inserts
            # identical to a never-persisted index.
            "level_draws": len(self._vectors),
        }
        arrays: Dict[str, np.ndarray] = {
            "vectors": (
                np.vstack(self._vectors)
                if self._vectors
                else np.zeros((0, self.dim), dtype=np.float64)
            ),
            "external_ids": np.asarray(self._external_ids, dtype=np.int64),
            "node_levels": np.asarray(self._node_levels, dtype=np.int64),
        }
        for position, layer in enumerate(self._layers):
            nodes = np.asarray(sorted(layer), dtype=np.int64)
            offsets = np.zeros(nodes.shape[0] + 1, dtype=np.int64)
            neighbours: List[int] = []
            for slot, node in enumerate(nodes):
                links = layer[int(node)]
                neighbours.extend(links)
                offsets[slot + 1] = offsets[slot] + len(links)
            arrays[f"layer{position}_nodes"] = nodes
            arrays[f"layer{position}_offsets"] = offsets
            arrays[f"layer{position}_neighbors"] = np.asarray(neighbours, dtype=np.int64)
        return meta, arrays

    @classmethod
    def from_state(
        cls,
        dim: int,
        config: object,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
    ) -> "HNSWIndex":
        index_config = config if isinstance(config, IndexConfig) else None
        index = cls(dim, index_config, seed=int(meta.get("seed", 0)))
        vectors = np.asarray(arrays["vectors"], dtype=np.float64)
        external_ids = np.asarray(arrays["external_ids"], dtype=np.int64)
        node_levels = np.asarray(arrays["node_levels"], dtype=np.int64)
        if vectors.ndim != 2 or vectors.shape[1] != dim:
            raise SnapshotCorruptionError(
                f"HNSW vectors must have shape (n, {dim}), got {vectors.shape}"
            )
        if not (vectors.shape[0] == external_ids.shape[0] == node_levels.shape[0]):
            raise SnapshotCorruptionError("HNSW state arrays disagree on element count")
        index._vectors = [row for row in vectors]
        index._external_ids = [int(identifier) for identifier in external_ids]
        index._node_levels = [int(level) for level in node_levels]
        num_layers = int(meta.get("num_layers", 0))
        layers: List[Dict[int, List[int]]] = []
        for position in range(num_layers):
            try:
                nodes = arrays[f"layer{position}_nodes"]
                offsets = arrays[f"layer{position}_offsets"]
                neighbours = arrays[f"layer{position}_neighbors"]
            except KeyError as error:
                raise SnapshotCorruptionError(
                    f"HNSW layer {position} is missing from the snapshot"
                ) from error
            layer: Dict[int, List[int]] = {}
            for slot, node in enumerate(nodes):
                start, stop = int(offsets[slot]), int(offsets[slot + 1])
                layer[int(node)] = [int(link) for link in neighbours[start:stop]]
            layers.append(layer)
        index._layers = layers
        entry_point = int(meta.get("entry_point", -1))
        index._entry_point = None if entry_point < 0 else entry_point
        level_draws = int(meta.get("level_draws", len(index._vectors)))
        if level_draws:
            index._rng.random(level_draws)
        return index

    def degree_statistics(self) -> Dict[str, float]:
        """Mean/max out-degree on layer 0 (diagnostics and tests)."""
        if not self._layers or not self._layers[0]:
            return {"mean": 0.0, "max": 0.0}
        degrees = [len(neighbours) for neighbours in self._layers[0].values()]
        return {"mean": float(np.mean(degrees)), "max": float(np.max(degrees))}

    def _insert(self, external_id: int, vector: np.ndarray) -> None:  # lovo: ignore[LOVO005] graph nodes ARE the stored corpus
        node = len(self._vectors)
        self._vectors.append(vector)
        self._external_ids.append(external_id)
        level = self._draw_level()
        self._node_levels.append(level)
        while len(self._layers) <= level:
            self._layers.append({})
        for layer in range(level + 1):
            self._layers[layer].setdefault(node, [])

        if self._entry_point is None:
            self._entry_point = node
            return

        current = self._entry_point
        top_level = len(self._layers) - 1
        for layer in range(top_level, level, -1):
            if layer < len(self._layers) and current in self._layers[layer]:
                current = self._greedy_descend(vector, current, layer)

        for layer in range(min(level, top_level), -1, -1):
            candidates = self._search_layer(vector, [current], layer, self._ef_construction)
            max_links = self._m if layer > 0 else self._m * 2
            neighbours = sorted(candidates, key=lambda n: -self._score(vector, n))[:max_links]
            self._layers[layer][node] = list(neighbours)
            for neighbour in neighbours:
                links = self._layers[layer].setdefault(neighbour, [])
                links.append(node)
                if len(links) > max_links:
                    # Prune into a fresh list and publish it with one dict
                    # assignment: an in-place sort leaves the list empty while
                    # it runs, which a concurrent beam search would observe.
                    pruned = sorted(
                        links,
                        key=lambda n: -float(self._vectors[neighbour] @ self._vectors[n]),
                    )[:max_links]
                    self._layers[layer][neighbour] = pruned
            if neighbours:
                current = neighbours[0]

        if self._node_levels[node] >= self._node_levels[self._entry_point]:
            self._entry_point = node

    def _draw_level(self) -> int:
        uniform = float(self._rng.random())
        return int(-np.log(max(uniform, 1e-12)) * self._level_multiplier)

    def _score(self, query: np.ndarray, node: int) -> float:
        return float(self._vectors[node] @ query)

    def _greedy_descend(self, query: np.ndarray, start: int, layer: int) -> int:
        current = start
        current_score = self._score(query, current)
        improved = True
        while improved:
            improved = False
            for neighbour in self._layers[layer].get(current, []):
                score = self._score(query, neighbour)
                if score > current_score:
                    current = neighbour
                    current_score = score
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entry_points: List[int], layer: int, ef: int
    ) -> List[int]:
        """Beam search on one layer; returns up to ``ef`` candidate nodes."""
        visited: Set[int] = set(entry_points)
        # Max-heap of candidates by score (negated for heapq) and a min-heap of
        # current best results.
        candidates = [(-self._score(query, node), node) for node in entry_points]
        heapq.heapify(candidates)
        results = [(self._score(query, node), node) for node in entry_points]
        heapq.heapify(results)

        while candidates:
            negative_score, node = heapq.heappop(candidates)
            if results and -negative_score < results[0][0] and len(results) >= ef:
                break
            for neighbour in self._layers[layer].get(node, []):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                score = self._score(query, neighbour)
                if len(results) < ef or score > results[0][0]:
                    heapq.heappush(candidates, (-score, neighbour))
                    heapq.heappush(results, (score, neighbour))
                    if len(results) > ef:
                        heapq.heappop(results)
        return [node for _score, node in results]
