"""Streaming ingest: encode→index pipeline appending segments to live indexes.

Offline, LOVO ingests a dataset in one blocking :meth:`~repro.core.system.
LOVO.ingest` call.  The :class:`StreamingIngestor` splits that call into a
two-stage background pipeline so new video keeps flowing into the indexes
while queries are being served:

``submit(segment)`` → **encode stage** (key-frame selection + patch encoding,
the expensive, embarrassingly parallel part) → **index stage** (the short
critical section: append vectors to the live indexes via
:meth:`~repro.core.system.LOVO.ingest_summary`, record a delta snapshot,
score standing queries).

Both stages hand off through bounded queues.  When the pipeline cannot keep
up, ``backpressure="block"`` makes ``submit`` wait (lossless, paces the
producer) while ``"reject"`` fails fast with
:class:`~repro.errors.StreamBackpressureError` (the producer retries).
``StreamConfig.max_duty_cycle`` optionally caps the pipeline's share of
wall-clock time so concurrent queries keep most of the CPU while segments
stream in.

Each stage runs in exactly **one** thread, so segments are encoded and
indexed strictly in submission order.  Combined with the order-insensitive
scoring tiles in :mod:`repro.vectordb.base`, this makes streamed ingest
**bit-exact** with offline ingest of the same segments in the same order —
the parity property ``tests/test_stream.py`` asserts for every index family.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.config import StreamConfig
from repro.core.summary import SummaryOutput
from repro.errors import StreamBackpressureError, StreamClosedError, StreamError
from repro.obs.quality import DriftMonitor
from repro.obs.registry import REGISTRY, MetricsRegistry
from repro.utils.locking import create_condition, create_lock
from repro.utils.timing import PhaseTimer
from repro.video.model import VideoDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.system import LOVO
    from repro.persist.delta import DeltaSnapshotStore
    from repro.stream.subscriptions import SubscriptionManager


class SegmentTicket:
    """Handle for one submitted segment; resolves when it is queryable."""

    def __init__(self, sequence: int, dataset: str) -> None:
        self.sequence = sequence
        self.dataset = dataset
        self._done = threading.Event()
        self._summary: Optional[SummaryOutput] = None
        self._error: Optional[BaseException] = None

    def _resolve(self, summary: Optional[SummaryOutput], error: Optional[BaseException]) -> None:
        self._summary = summary
        self._error = error
        self._done.set()

    @property
    def done(self) -> bool:
        """Whether the segment has finished (successfully or not)."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the segment is indexed (or failed); False on timeout."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> SummaryOutput:
        """The segment's summary once indexed; re-raises pipeline errors."""
        if not self._done.wait(timeout):
            raise StreamError(
                f"Segment {self.sequence} ({self.dataset!r}) not indexed within timeout"
            )
        if self._error is not None:
            raise self._error
        assert self._summary is not None
        return self._summary


_STOP = object()


class _DutyCyclePacer:
    """Caps the pipeline's busy fraction of wall-clock time.

    Both stages bracket each work unit (one segment encoded or indexed) with
    ``throttle`` / ``charge``: ``throttle`` takes the single work permit —
    in paced mode at most one stage computes at a time, so concurrent
    queries never contend with more than one pipeline thread — then sleeps
    until ``busy / elapsed <= duty``; ``charge`` accounts the unit's
    duration and releases the permit.  This keeps the long-run CPU share of
    the whole pipeline at or below ``duty``, the mechanism behind the
    streaming benchmark's query-latency gate.
    """

    def __init__(self, duty: float) -> None:
        self._duty = duty
        self._lock = create_lock("_DutyCyclePacer._lock")
        # The permit is a semaphore in lock's clothing: taken in throttle()
        # and released in charge(), i.e. held across the unit of work by
        # design.  It stays an untracked primitive — lockdep would (rightly,
        # for a mutex) flag the long hold and cross-method release.
        self._permit = threading.Lock()
        self._busy = 0.0
        self._origin: Optional[float] = None

    def throttle(self) -> None:
        """Take the work permit, then sleep until the busy fraction is low."""
        self._permit.acquire()
        with self._lock:
            now = time.monotonic()
            if self._origin is None:
                self._origin = now
                return
            pause = self._busy / self._duty - (now - self._origin)
        if pause > 0:
            time.sleep(pause)

    def charge(self, elapsed: float) -> None:
        """Account ``elapsed`` seconds of work and release the permit."""
        with self._lock:
            now = time.monotonic()
            if self._origin is None:
                self._origin = now - elapsed
            self._busy += elapsed
        self._permit.release()


class StreamingIngestor:
    """Background encode→index pipeline over a live :class:`LOVO` system.

    Queries against the system remain safe and consistent throughout: the
    index layer publishes each append atomically (copy-on-write views), so a
    concurrent query sees either the collection before a segment or after
    it — never a torn intermediate.
    """

    def __init__(
        self,
        system: "LOVO",
        config: StreamConfig | None = None,
        subscriptions: "SubscriptionManager | None" = None,
        delta_store: "DeltaSnapshotStore | None" = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._system = system
        self._config = config or system.config.stream
        self._delta_store = delta_store
        if subscriptions is None:
            from repro.stream.subscriptions import SubscriptionManager

            subscriptions = SubscriptionManager(
                encode=system.text_encoder.encode,
                config=self._config,
                registry=registry,
            )
        self._subscriptions = subscriptions
        self._pacer = (
            _DutyCyclePacer(self._config.max_duty_cycle)
            if self._config.max_duty_cycle is not None
            else None
        )
        self._encode_queue: "queue.Queue[object]" = queue.Queue(
            self._config.encode_queue_size
        )
        self._index_queue: "queue.Queue[object]" = queue.Queue(
            self._config.index_queue_size
        )
        self._state = create_condition("StreamingIngestor._state")
        self._sequence = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._entities = 0
        self._closed = False
        self._started = False

        registry = registry or REGISTRY
        self._segments_counter = registry.counter(
            "lovo_stream_segments_total", "Segments indexed by the streaming pipeline"
        )
        self._entities_counter = registry.counter(
            "lovo_stream_entities_total", "Patch vectors appended by streaming ingest"
        )
        self._failures_counter = registry.counter(
            "lovo_stream_segment_failures_total", "Segments that failed in the pipeline"
        )
        self._rejected_counter = registry.counter(
            "lovo_stream_segments_rejected_total",
            "Segments rejected by backpressure in reject mode",
        )
        self._lag_gauge = registry.gauge(
            "lovo_stream_ingest_lag_segments",
            "Segments submitted but not yet queryable (pipeline lag)",
        )
        self._encode_depth_gauge = registry.gauge(
            "lovo_stream_encode_queue_depth", "Segments waiting for the encode stage"
        )
        self._index_depth_gauge = registry.gauge(
            "lovo_stream_index_queue_depth", "Summaries waiting for the index stage"
        )
        self._ingest_histogram = registry.histogram(
            "lovo_stream_ingest_seconds",
            "End-to-end submit-to-queryable latency per segment",
        )
        # Embedding-distribution drift under streaming ingest: the per-patch
        # L2 norms feed a windowed monitor whose alerts count genuine shifts
        # (threshold from the system's obs config when it has one).
        obs_config = getattr(getattr(system, "config", None), "obs", None)
        self._norm_gauge = registry.gauge(
            "lovo_stream_embedding_norm",
            "Mean patch-embedding L2 norm of the most recent indexed segment",
        )
        self._norm_drift = DriftMonitor(
            "embedding_norm",
            registry.counter(
                "lovo_stream_drift_alerts_total",
                "Streaming embedding-distribution drift alerts, by signal",
                ("signal",),
            ),
            threshold=getattr(obs_config, "drift_threshold", 4.0),
        )

        self._encode_thread = threading.Thread(
            target=self._encode_loop, name="lovo-stream-encode", daemon=True
        )
        self._index_thread = threading.Thread(
            target=self._index_loop, name="lovo-stream-index", daemon=True
        )

    @property
    def subscriptions(self) -> "SubscriptionManager":
        """The standing-query manager scored by the index stage."""
        return self._subscriptions

    @property
    def delta_store(self) -> "DeltaSnapshotStore | None":
        """The delta-snapshot store appended to by the index stage, if any."""
        return self._delta_store

    @property
    def closed(self) -> bool:
        """Whether the ingestor has been stopped."""
        return self._closed

    def start(self) -> "StreamingIngestor":
        """Start the pipeline threads; idempotent. Returns ``self``."""
        with self._state:
            if self._closed:
                raise StreamClosedError("Cannot restart a stopped streaming ingestor")
            if not self._started:
                self._started = True
                self._encode_thread.start()
                self._index_thread.start()
        return self

    def submit(self, dataset: VideoDataset) -> SegmentTicket:
        """Enqueue one segment for encode+index; returns its ticket.

        In ``block`` mode this waits for encode-queue space (pacing the
        producer to the pipeline's sustainable rate); in ``reject`` mode a
        full queue raises :class:`StreamBackpressureError` immediately.
        """
        with self._state:
            if self._closed:
                raise StreamClosedError("Streaming ingestor is stopped")
            if not self._started:
                raise StreamError("Call start() before submit()")
            self._sequence += 1
            ticket = SegmentTicket(self._sequence, dataset.name)
        item = (ticket, dataset, time.perf_counter())
        if self._config.backpressure == "reject":
            try:
                self._encode_queue.put_nowait(item)
            except queue.Full:
                self._rejected_counter.inc()
                raise StreamBackpressureError(
                    "Streaming encode queue is full; retry after the pipeline drains"
                ) from None
        else:
            self._encode_queue.put(item)
        with self._state:
            self._submitted += 1
            self._update_gauges_locked()
        return ticket

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted segment has completed (or failed)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state:
            while self._completed + self._failed < self._submitted:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._state.wait(remaining)
            return True

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop the pipeline; by default finishes all queued segments first.

        After ``stop`` returns, further :meth:`submit` calls raise
        :class:`StreamClosedError`.  With ``drain=False`` segments still in
        the queues are abandoned (their tickets resolve with
        :class:`StreamClosedError`).
        """
        with self._state:
            if self._closed:
                return
            self._closed = True
        if drain and self._started:
            self.drain(timeout)
        if self._started:
            self._encode_queue.put(_STOP)
            self._encode_thread.join(timeout)
            self._index_thread.join(timeout)
        if not drain:
            self._abandon_queue(self._encode_queue)
            self._abandon_queue(self._index_queue)
        with self._state:
            self._update_gauges_locked()

    def _abandon_queue(self, pending: "queue.Queue[object]") -> None:
        while True:
            try:
                item = pending.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            ticket = item[0]
            ticket._resolve(None, StreamClosedError("Streaming ingestor stopped"))
            with self._state:
                self._failed += 1
                self._state.notify_all()

    def stats(self) -> Dict[str, object]:
        """Pipeline counters plus the standing-query aggregate."""
        with self._state:
            lag = self._submitted - self._completed - self._failed
            snapshot: Dict[str, object] = {
                "submitted": self._submitted,
                "indexed": self._completed,
                "failed": self._failed,
                "entities": self._entities,
                "lag": lag,
                "encode_queue_depth": self._encode_queue.qsize(),
                "index_queue_depth": self._index_queue.qsize(),
                "closed": self._closed,
                "backpressure": self._config.backpressure,
                "max_duty_cycle": self._config.max_duty_cycle,
            }
        snapshot["standing_queries"] = self._subscriptions.stats()
        snapshot["drift"] = self._norm_drift.stats()
        if self._delta_store is not None:
            snapshot["deltas"] = len(self._delta_store.deltas())
        return snapshot

    # ---------------------------------------------------------------- stages

    def _encode_loop(self) -> None:
        while True:
            item = self._encode_queue.get()
            if item is _STOP:
                self._index_queue.put(_STOP)
                return
            ticket, dataset, submitted_at = item
            self._update_gauges()
            if self._pacer is not None:
                self._pacer.throttle()
            encode_start = time.perf_counter()
            try:
                summary = self._system.summarizer.summarize(
                    dataset, timer=PhaseTimer()
                )
                encode_end = time.perf_counter()
            except BaseException as error:  # noqa: BLE001 - resolve the ticket
                if self._pacer is not None:
                    self._pacer.charge(time.perf_counter() - encode_start)
                self._finish(ticket, None, error)
                if not isinstance(error, Exception):
                    # Resolve the ticket, then let KeyboardInterrupt/SystemExit
                    # kill the stage; swallowing them would leave a zombie
                    # pipeline that looks healthy but ignores interrupts.
                    self._index_queue.put(_STOP)
                    raise
                continue
            if self._pacer is not None:
                self._pacer.charge(encode_end - encode_start)
            self._index_queue.put(
                (ticket, dataset.name, summary, submitted_at, encode_start, encode_end)
            )
            self._update_gauges()

    def _index_loop(self) -> None:
        while True:
            item = self._index_queue.get()
            if item is _STOP:
                return
            ticket, dataset_name, summary, submitted_at, encode_start, encode_end = item
            self._update_gauges()
            if self._pacer is not None:
                self._pacer.throttle()
            work_start = time.perf_counter()
            trace = self._system.tracer.start(
                kind="stream_ingest", dataset=dataset_name, segment=ticket.sequence
            )
            if trace is not None:
                trace.record(
                    "stream_encode",
                    encode_start,
                    encode_end,
                    entities=len(summary.encodings),
                )
            try:
                index_start = time.perf_counter()
                self._system.ingest_summary(dataset_name, summary)
                data_version = self._system.data_version
                index_end = time.perf_counter()
                if trace is not None:
                    trace.record(
                        "stream_index", index_start, index_end, epoch=data_version
                    )
                if self._delta_store is not None:
                    self._delta_store.append(dataset_name, summary)
                match_start = time.perf_counter()
                matches = self._subscriptions.score_batch(
                    summary.encodings, data_version, dataset_name
                )
                match_end = time.perf_counter()
                if trace is not None:
                    trace.record("stream_match", match_start, match_end, matches=matches)
            except BaseException as error:  # noqa: BLE001 - resolve the ticket
                if self._pacer is not None:
                    self._pacer.charge(time.perf_counter() - work_start)
                self._system.tracer.finish(trace, status="error", error=str(error))
                self._finish(ticket, None, error)
                if not isinstance(error, Exception):
                    # Same contract as the encode stage: tickets resolve, but
                    # interpreter-shutdown control flow still unwinds.
                    raise
                continue
            done = time.perf_counter()
            if self._pacer is not None:
                self._pacer.charge(done - work_start)
            self._ingest_histogram.observe(done - submitted_at)
            self._segments_counter.inc()
            self._entities_counter.inc(len(summary.encodings))
            if summary.encodings:
                norms = [
                    float(np.linalg.norm(encoding.embedding))
                    for encoding in summary.encodings
                ]
                self._norm_gauge.set(sum(norms) / len(norms))
                self._norm_drift.observe_many(norms)
            self._system.tracer.finish(trace, status="ok", matches=matches)
            with self._state:
                self._entities += len(summary.encodings)
            self._finish(ticket, summary, None)

    def _finish(
        self,
        ticket: SegmentTicket,
        summary: Optional[SummaryOutput],
        error: Optional[BaseException],
    ) -> None:
        ticket._resolve(summary, error)
        with self._state:
            if error is None:
                self._completed += 1
            else:
                self._failed += 1
                self._failures_counter.inc()
            self._update_gauges_locked()
            self._state.notify_all()

    def _update_gauges(self) -> None:
        with self._state:
            self._update_gauges_locked()

    def _update_gauges_locked(self) -> None:
        self._lag_gauge.set(self._submitted - self._completed - self._failed)
        self._encode_depth_gauge.set(self._encode_queue.qsize())
        self._index_depth_gauge.set(self._index_queue.qsize())


__all__ = ["SegmentTicket", "StreamingIngestor"]
