"""Streaming ingest: live index appends, delta snapshots, standing queries.

The subsystem turns LOVO's one-shot offline ingest into a continuously
running pipeline:

* :class:`~repro.stream.ingestor.StreamingIngestor` — background
  encode→index stages over bounded queues with block/reject backpressure;
  appended segments become queryable atomically and bit-exactly match
  offline ingest of the same segments.
* :class:`~repro.stream.subscriptions.SubscriptionManager` — standing
  queries: register text + threshold, get matches pushed from each newly
  indexed segment into a bounded per-subscriber buffer drained by long-poll.
* :class:`~repro.persist.delta.DeltaSnapshotStore` (in :mod:`repro.persist`)
  — base snapshot + ordered deltas recorded per segment, folded back into a
  new base by ``compact()``.
"""

from repro.stream.ingestor import SegmentTicket, StreamingIngestor
from repro.stream.subscriptions import MatchEvent, Subscription, SubscriptionManager

__all__ = [
    "MatchEvent",
    "SegmentTicket",
    "StreamingIngestor",
    "Subscription",
    "SubscriptionManager",
]
