"""Standing queries: subscribers that are pushed matches as video arrives.

A subscriber registers a text query plus a score threshold and receives an
event for every newly indexed patch whose class embedding scores at or above
that threshold against the query vector.  Scoring happens inside the ingest
pipeline — one inner product of the segment's freshly encoded class
embeddings against each registered query vector — so a standing query costs
``O(new_vectors)`` per segment, independent of collection size, and fires
without any polling of the index.

Delivery is decoupled from ingest through per-subscriber **bounded** buffers:
the pipeline never blocks on a slow consumer; when a buffer overflows, the
oldest undelivered events are dropped and counted.  Consumers drain their
buffer with :meth:`SubscriptionManager.poll`, a long-poll that parks on a
condition variable until events arrive or the timeout lapses (the HTTP
frontend maps this to ``GET /v1/subscriptions/<id>/events``).
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Sequence

import numpy as np

from repro.config import StreamConfig
from repro.encoders.vision import PatchEncoding
from repro.errors import (
    StreamError,
    SubscriptionLimitError,
    SubscriptionNotFoundError,
)
from repro.obs.registry import REGISTRY, MetricsRegistry
from repro.utils.locking import create_condition


@dataclass(frozen=True)
class MatchEvent:
    """One standing-query match pushed by the ingest pipeline."""

    subscription_id: str
    sequence: int
    patch_id: str
    frame_id: str
    video_id: str
    score: float
    data_version: int
    dataset: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form served by the events endpoint."""
        return {
            "subscription_id": self.subscription_id,
            "sequence": self.sequence,
            "patch_id": self.patch_id,
            "frame_id": self.frame_id,
            "video_id": self.video_id,
            "score": self.score,
            "data_version": self.data_version,
            "dataset": self.dataset,
        }


class Subscription:
    """One registered standing query and its bounded event buffer."""

    def __init__(
        self,
        subscription_id: str,
        query: str,
        threshold: float,
        vector: np.ndarray,
        buffer_size: int,
    ) -> None:
        self.id = subscription_id
        self.query = query
        self.threshold = float(threshold)
        self.vector = vector
        self._buffer: Deque[MatchEvent] = deque(maxlen=buffer_size)
        self._buffer_size = buffer_size
        self._sequence = itertools.count(1)
        self.matches_total = 0
        self.dropped_total = 0
        self.delivered_total = 0

    def next_sequence(self) -> int:
        """Monotonic per-subscription event sequence number."""
        return next(self._sequence)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description plus delivery counters."""
        return {
            "id": self.id,
            "query": self.query,
            "threshold": self.threshold,
            "buffer_size": self._buffer_size,
            "pending": len(self._buffer),
            "matches_total": self.matches_total,
            "delivered_total": self.delivered_total,
            "dropped_total": self.dropped_total,
        }


class SubscriptionManager:
    """Registry of standing queries plus the push/drain machinery.

    ``encode`` turns a query string into a vector in the class-embedding
    space (the system's :class:`~repro.encoders.text.TextEncoder` bound at
    construction); it runs once per registration, so scoring a segment is
    pure ``numpy``.  All state is guarded by one condition variable — the
    same one long-polling consumers park on.
    """

    def __init__(
        self,
        encode: Callable[[str], np.ndarray],
        config: StreamConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._encode = encode
        self._config = config or StreamConfig()
        self._subscriptions: Dict[str, Subscription] = {}
        self._condition = create_condition("SubscriptionManager._condition")
        self._id_counter = itertools.count(1)
        registry = registry or REGISTRY
        self._matches_counter = registry.counter(
            "lovo_stream_match_events_total",
            "Standing-query match events pushed by the ingest pipeline",
        )
        self._dropped_counter = registry.counter(
            "lovo_stream_match_events_dropped_total",
            "Standing-query match events dropped from full subscriber buffers",
        )
        self._subscriptions_gauge = registry.gauge(
            "lovo_stream_subscriptions",
            "Currently registered standing queries",
        )

    def register(self, query: str, threshold: float) -> Subscription:
        """Register a standing query; returns the live subscription."""
        text = str(query).strip()
        if not text:
            raise StreamError("A standing query needs non-empty query text")
        threshold = float(threshold)
        vector = np.asarray(self._encode(text), dtype=np.float64).reshape(-1)
        with self._condition:
            if len(self._subscriptions) >= self._config.max_subscriptions:
                raise SubscriptionLimitError(
                    f"At most {self._config.max_subscriptions} standing queries "
                    "may be registered at once"
                )
            subscription = Subscription(
                subscription_id=f"sub-{next(self._id_counter):06d}",
                query=text,
                threshold=threshold,
                vector=vector,
                buffer_size=self._config.subscription_buffer_size,
            )
            self._subscriptions[subscription.id] = subscription
            self._subscriptions_gauge.set(len(self._subscriptions))
        return subscription

    def unregister(self, subscription_id: str) -> None:
        """Remove a subscription; unknown ids raise."""
        with self._condition:
            if self._subscriptions.pop(subscription_id, None) is None:
                raise SubscriptionNotFoundError(
                    f"Unknown subscription {subscription_id!r}"
                )
            self._subscriptions_gauge.set(len(self._subscriptions))
            # Wake any poller parked on the removed subscription so it can
            # observe the deletion instead of sleeping out its full timeout.
            self._condition.notify_all()

    def get(self, subscription_id: str) -> Subscription:
        """The live subscription; unknown ids raise."""
        with self._condition:
            subscription = self._subscriptions.get(subscription_id)
            if subscription is None:
                raise SubscriptionNotFoundError(
                    f"Unknown subscription {subscription_id!r}"
                )
            return subscription

    def list(self) -> List[Dict[str, object]]:
        """Descriptions of every registered subscription."""
        with self._condition:
            return [entry.to_dict() for entry in self._subscriptions.values()]

    def __len__(self) -> int:
        with self._condition:
            return len(self._subscriptions)

    def score_batch(
        self,
        encodings: Sequence[PatchEncoding],
        data_version: int,
        dataset: str = "",
    ) -> int:
        """Score one freshly indexed segment against every standing query.

        Returns the number of match events pushed (after per-segment capping
        and buffer-overflow drops are applied).  Called by the ingest
        pipeline's index stage with the segment's encodings — the only data
        a standing query ever sees is data that is already queryable.
        """
        if not encodings:
            return 0
        with self._condition:
            subscriptions = list(self._subscriptions.values())
        if not subscriptions:
            return 0
        matrix = np.stack([encoding.class_embedding for encoding in encodings])
        cap = self._config.max_matches_per_segment
        pushed = 0
        for subscription in subscriptions:
            scores = matrix @ subscription.vector
            hits = np.flatnonzero(scores >= subscription.threshold)
            if hits.shape[0] == 0:
                continue
            if hits.shape[0] > cap:
                # Keep the best-scoring matches (ties broken by position so
                # the selection is deterministic), delivered in score order.
                hits = hits[np.lexsort((hits, -scores[hits]))[:cap]]
            else:
                hits = hits[np.lexsort((hits, -scores[hits]))]
            with self._condition:
                if subscription.id not in self._subscriptions:
                    continue  # unregistered while we were scoring
                for position in hits:
                    encoding = encodings[int(position)]
                    event = MatchEvent(
                        subscription_id=subscription.id,
                        sequence=subscription.next_sequence(),
                        patch_id=encoding.patch_id,
                        frame_id=encoding.frame_id,
                        video_id=encoding.video_id,
                        score=float(scores[position]),
                        data_version=int(data_version),
                        dataset=dataset,
                    )
                    if len(subscription._buffer) == subscription._buffer.maxlen:
                        subscription.dropped_total += 1
                        self._dropped_counter.inc()
                    subscription._buffer.append(event)
                    subscription.matches_total += 1
                    pushed += 1
                self._condition.notify_all()
        if pushed:
            self._matches_counter.inc(pushed)
        return pushed

    def poll(
        self,
        subscription_id: str,
        timeout: float | None = None,
        max_events: int = 64,
    ) -> List[MatchEvent]:
        """Drain up to ``max_events`` buffered matches, long-polling if empty.

        Blocks until at least one event is buffered or ``timeout`` seconds
        (clamped to the configured ceiling) have passed; an empty list means
        the poll timed out.  Unknown ids raise — including when the
        subscription is deleted *while* the caller is parked.
        """
        if timeout is None:
            timeout = self._config.default_poll_seconds
        timeout = min(max(float(timeout), 0.0), self._config.max_poll_seconds)
        max_events = max(1, int(max_events))
        deadline = time.monotonic() + timeout
        with self._condition:
            while True:
                subscription = self._subscriptions.get(subscription_id)
                if subscription is None:
                    raise SubscriptionNotFoundError(
                        f"Unknown subscription {subscription_id!r}"
                    )
                if subscription._buffer:
                    events = [
                        subscription._buffer.popleft()
                        for _ in range(min(max_events, len(subscription._buffer)))
                    ]
                    subscription.delivered_total += len(events)
                    return events
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._condition.wait(remaining)

    def stats(self) -> Dict[str, object]:
        """Aggregate counters for ``stats()``/metrics surfaces."""
        with self._condition:
            subscriptions = list(self._subscriptions.values())
        return {
            "subscriptions": len(subscriptions),
            "matches_total": sum(entry.matches_total for entry in subscriptions),
            "delivered_total": sum(entry.delivered_total for entry in subscriptions),
            "dropped_total": sum(entry.dropped_total for entry in subscriptions),
            "pending": sum(len(entry._buffer) for entry in subscriptions),
        }


__all__ = ["MatchEvent", "Subscription", "SubscriptionManager"]
