"""Reproduction of "LOVO: Efficient Complex Object Query in Large-Scale Video Datasets".

Public API overview
-------------------

* :class:`repro.LOVO` — the full system: one-time ingestion plus two-stage
  complex object queries.
* :class:`repro.LOVOConfig` — configuration of the encoders, key-frame
  extraction, ANN index, and query strategy.
* :mod:`repro.video` — synthetic stand-ins for the paper's datasets.
* :mod:`repro.baselines` — VOCAL, MIRIS, FiGO, ZELDA, UMT, and VISA baselines.
* :mod:`repro.eval` — the query workloads of Table II and the AveP metric.
* :mod:`repro.serve` — the concurrent query service: micro-batching worker
  pool, TTL+LRU result cache, service metrics, and a versioned ``/v1`` HTTP
  frontend (``python -m repro.serve --snapshot <dir> --port 8080``).
* :mod:`repro.shard` — the sharded scatter-gather vector database: hash or
  k-means partitioning across N shards, parallel fan-out with exact global
  top-k merging, and replica groups with automatic failover.  Enable it with
  ``LOVOConfig(shard=ShardConfig(num_shards=4))``; query results stay
  bit-identical to the single-shard database.
* :mod:`repro.obs` — observability: per-request tracing across the serving →
  shard → index stack, a unified metrics registry, and Prometheus text
  exposition (served at ``GET /v1/metrics``).  Configured by
  :class:`repro.ObsConfig`; on by default, near-free when disabled.
* :mod:`repro.stream` — streaming ingest: a background encode→index pipeline
  appending live segments into the indexes (bit-exact with offline ingest),
  delta snapshots with compaction (:class:`repro.persist.delta.
  DeltaSnapshotStore`), and standing queries pushed to subscribers over
  ``/v1/subscriptions``.  Configured by :class:`repro.StreamConfig`.
"""

from repro.config import (
    EncoderConfig,
    IndexConfig,
    KeyframeConfig,
    LOVOConfig,
    ObsConfig,
    QueryConfig,
    ServeConfig,
    ShardConfig,
    StreamConfig,
)
from repro.core.query import QueryOptions, QueryRequest
from repro.core.results import BatchQueryResponse, ObjectQueryResult, QueryResponse
from repro.core.system import LOVO
from repro.errors import (
    ReproError,
    ServiceOverloadedError,
    ServingError,
    ShardError,
    ShardUnavailableError,
    StreamBackpressureError,
    StreamClosedError,
    StreamError,
    SubscriptionNotFoundError,
    SystemNotReadyError,
    error_envelope,
)


def _resolve_version() -> str:
    """Single-source the package version from packaging metadata.

    ``pyproject.toml`` is the only place the version number is written.  An
    installed package reads it through ``importlib.metadata``; a plain
    checkout (tests run via the ``pythonpath`` setting without installing)
    falls back to parsing the adjacent ``pyproject.toml``.
    """
    from importlib import metadata

    try:
        return metadata.version("lovo-repro")
    except metadata.PackageNotFoundError:
        pass
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(encoding="utf-8"), re.MULTILINE
        )
    except OSError:
        match = None
    return match.group(1) if match else "0.0.0+unknown"


__version__ = _resolve_version()

__all__ = [
    "LOVO",
    "LOVOConfig",
    "EncoderConfig",
    "KeyframeConfig",
    "IndexConfig",
    "ObsConfig",
    "QueryConfig",
    "ServeConfig",
    "ShardConfig",
    "StreamConfig",
    "QueryRequest",
    "QueryOptions",
    "QueryResponse",
    "BatchQueryResponse",
    "ObjectQueryResult",
    "ReproError",
    "ServingError",
    "ServiceOverloadedError",
    "ShardError",
    "ShardUnavailableError",
    "StreamError",
    "StreamBackpressureError",
    "StreamClosedError",
    "SubscriptionNotFoundError",
    "SystemNotReadyError",
    "error_envelope",
    "__version__",
]
