"""Reproduction of "LOVO: Efficient Complex Object Query in Large-Scale Video Datasets".

Public API overview
-------------------

* :class:`repro.LOVO` — the full system: one-time ingestion plus two-stage
  complex object queries.
* :class:`repro.LOVOConfig` — configuration of the encoders, key-frame
  extraction, ANN index, and query strategy.
* :mod:`repro.video` — synthetic stand-ins for the paper's datasets.
* :mod:`repro.baselines` — VOCAL, MIRIS, FiGO, ZELDA, UMT, and VISA baselines.
* :mod:`repro.eval` — the query workloads of Table II and the AveP metric.
"""

from repro.config import (
    EncoderConfig,
    IndexConfig,
    KeyframeConfig,
    LOVOConfig,
    QueryConfig,
)
from repro.core.results import BatchQueryResponse, ObjectQueryResult, QueryResponse
from repro.core.system import LOVO
from repro.errors import ReproError

__version__ = "1.1.0"

__all__ = [
    "LOVO",
    "LOVOConfig",
    "EncoderConfig",
    "KeyframeConfig",
    "IndexConfig",
    "QueryConfig",
    "QueryResponse",
    "BatchQueryResponse",
    "ObjectQueryResult",
    "ReproError",
    "__version__",
]
