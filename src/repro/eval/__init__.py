"""Evaluation: ground-truth construction, AveP metric, experiment runner."""

from repro.eval.metrics import (
    GroundTruthInstance,
    GroundTruthObject,
    average_precision,
    evaluate_results,
)
from repro.eval.workloads import (
    QuerySpec,
    all_queries,
    build_ground_truth,
    queries_for_dataset,
    query_by_id,
)
from repro.eval.runner import ExperimentRecord, run_queries
from repro.eval.reporting import format_table

__all__ = [
    "GroundTruthInstance",
    "GroundTruthObject",
    "average_precision",
    "evaluate_results",
    "QuerySpec",
    "all_queries",
    "queries_for_dataset",
    "query_by_id",
    "build_ground_truth",
    "ExperimentRecord",
    "run_queries",
    "format_table",
]
