"""Plain-text report formatting for the benchmark harness.

The benchmarks print tables shaped like the paper's tables and figures (AveP
per query, runtime per dataset, ablation grids).  These helpers format such
tables without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width text table."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def format_series(name: str, points: Mapping[object, float], unit: str = "") -> str:
    """Render a one-line-per-point series (for figure-style outputs)."""
    lines = [f"{name}:"]
    for key, value in points.items():
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {key}: {value:.4f}{suffix}")
    return "\n".join(lines)


def speedup_factors(latencies: Mapping[str, float]) -> Dict[str, float]:
    """Normalise latencies against the slowest entry (the paper's "Nx" labels)."""
    if not latencies:
        return {}
    slowest = max(latencies.values())
    return {
        name: (slowest / value if value > 0 else float("inf"))
        for name, value in latencies.items()
    }
