"""Query workloads of the paper (Table II and Table VI) with ground truth.

Every query is a :class:`QuerySpec`: the natural-language text, the dataset
it targets, and a *ground-truth predicate* over annotated objects.  Ground
truth is derived from the synthetic dataset annotations exactly the way the
paper derives it from ByteTrack boxes plus manual labelling: an object in a
frame is a positive when the predicate holds (category, attributes, context,
activity, and — for the complex queries — geometric relations against the
other objects in the same frame).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import EvaluationError
from repro.eval.metrics import GroundTruthInstance
from repro.utils.geometry import BoundingBox, box_in_center_region, box_next_to, boxes_side_by_side
from repro.video.model import Frame, ObjectAnnotation, VideoDataset

#: Signature of a ground-truth predicate: does this object, in this frame,
#: satisfy the query?
Predicate = Callable[[ObjectAnnotation, Frame], bool]


@dataclass(frozen=True)
class QuerySpec:
    """One evaluation query with its ground-truth predicate."""

    query_id: str
    dataset: str
    text: str
    predicate: Predicate
    complexity: str = "normal"


def _has(annotation: ObjectAnnotation, **attributes: str) -> bool:
    """Whether the annotation carries all the given attribute values."""
    return all(annotation.attributes.get(key) == value for key, value in attributes.items())


def _category(annotation: ObjectAnnotation, *categories: str) -> bool:
    return annotation.category in categories


def _in_context(annotation: ObjectAnnotation, *contexts: str) -> bool:
    return any(context in annotation.context for context in contexts)


def _doing(annotation: ObjectAnnotation, *activities: str) -> bool:
    return any(activity in annotation.activity for activity in activities)


def _side_by_side_with(
    annotation: ObjectAnnotation, frame: Frame, companion_category: str
) -> bool:
    for other in frame.objects:
        if other.object_id == annotation.object_id:
            continue
        if other.category != companion_category:
            continue
        if boxes_side_by_side(annotation.box.clipped(), other.box.clipped()):
            return True
    return False


def _next_to(
    annotation: ObjectAnnotation,
    frame: Frame,
    companion_category: str,
    companion_attributes: Optional[Dict[str, str]] = None,
) -> bool:
    for other in frame.objects:
        if other.object_id == annotation.object_id:
            continue
        if other.category != companion_category:
            continue
        if companion_attributes and not _has(other, **companion_attributes):
            continue
        if box_next_to(annotation.box.clipped(), other.box.clipped()):
            return True
    return False


def _build_query_table() -> Dict[str, QuerySpec]:
    """All evaluation queries: Table II (Q1.1–Q4.4) plus Table VI (EQ1–EQ4)."""
    specs: List[QuerySpec] = [
        # Cityscapes.
        QuerySpec(
            "Q1.1", "cityscapes", "A person walking on the street.",
            lambda obj, frame: _category(obj, "person") and _doing(obj, "walking")
            and _in_context(obj, "street"),
            complexity="simple",
        ),
        QuerySpec(
            "Q1.2", "cityscapes",
            "A person in light-colored clothing walking while holding a dark bag.",
            lambda obj, frame: _category(obj, "person") and _doing(obj, "walking")
            and _has(obj, color="light", accessory="dark bag"),
            complexity="normal",
        ),
        QuerySpec(
            "Q1.3", "cityscapes", "A person riding a bicycle.",
            lambda obj, frame: _category(obj, "person") and _doing(obj, "riding")
            and obj.attributes.get("vehicle") == "bicycle",
            complexity="simple",
        ),
        QuerySpec(
            "Q1.4", "cityscapes",
            "A person riding a bicycle, wearing a black t-shirt and blue jeans.",
            lambda obj, frame: _category(obj, "person") and _doing(obj, "riding")
            and _has(obj, vehicle="bicycle", clothing="black t-shirt"),
            complexity="normal",
        ),
        # Bellevue.
        QuerySpec(
            "Q2.1", "bellevue", "A red car driving in the center of the road.",
            lambda obj, frame: _category(obj, "car") and _has(obj, color="red")
            and _doing(obj, "driving") and box_in_center_region(obj.box.clipped()),
            complexity="normal",
        ),
        QuerySpec(
            "Q2.2", "bellevue",
            "A red car side by side with another car, both positioned in the center of the road.",
            lambda obj, frame: _category(obj, "car") and _has(obj, color="red")
            and box_in_center_region(obj.box.clipped())
            and _side_by_side_with(obj, frame, "car"),
            complexity="complex",
        ),
        QuerySpec(
            "Q2.3", "bellevue", "A bus driving on the road.",
            lambda obj, frame: _category(obj, "bus") and _doing(obj, "driving")
            and _in_context(obj, "road"),
            complexity="simple",
        ),
        QuerySpec(
            "Q2.4", "bellevue",
            "A bus driving on the road with white roof and yellow-green body.",
            lambda obj, frame: _category(obj, "bus")
            and _has(obj, color="yellow-green", roof="white roof"),
            complexity="normal",
        ),
        # QVHighlights.
        QuerySpec(
            "Q3.1", "qvhighlights", "A woman smiling sitting inside car.",
            lambda obj, frame: _category(obj, "woman") and _in_context(obj, "car_interior")
            and obj.attributes.get("expression") == "smiling",
            complexity="normal",
        ),
        QuerySpec(
            "Q3.2", "qvhighlights",
            "A red-hair woman with white dress sitting inside a car.",
            lambda obj, frame: _category(obj, "woman") and _in_context(obj, "car_interior")
            and _has(obj, hair="red hair", clothing="white dress"),
            complexity="normal",
        ),
        QuerySpec(
            "Q3.3", "qvhighlights", "A white dog inside a car.",
            lambda obj, frame: _category(obj, "dog") and _has(obj, color="white")
            and _in_context(obj, "car_interior"),
            complexity="normal",
        ),
        QuerySpec(
            "Q3.4", "qvhighlights",
            "A white dog inside a car, next to a woman wearing black clothes.",
            lambda obj, frame: _category(obj, "dog") and _has(obj, color="white")
            and _in_context(obj, "car_interior")
            and _next_to(obj, frame, "woman", {"clothing": "black clothes"}),
            complexity="complex",
        ),
        # Beach.
        QuerySpec(
            "Q4.1", "beach", "A green bus driving on the road.",
            lambda obj, frame: _category(obj, "bus") and _has(obj, color="green")
            and _doing(obj, "driving"),
            complexity="normal",
        ),
        QuerySpec(
            "Q4.2", "beach", "A green bus with the white roof driving on the road.",
            lambda obj, frame: _category(obj, "bus")
            and _has(obj, color="green", roof="white roof"),
            complexity="normal",
        ),
        QuerySpec(
            "Q4.3", "beach", "A truck driving on the road.",
            lambda obj, frame: _category(obj, "truck") and _doing(obj, "driving"),
            complexity="simple",
        ),
        QuerySpec(
            "Q4.4", "beach", "A small white truck filled with cargo driving on the road.",
            lambda obj, frame: _category(obj, "truck")
            and _has(obj, color="white", size="small", load="cargo"),
            complexity="normal",
        ),
        # ActivityNet-QA extension queries (Table VI).
        QuerySpec(
            "EQ1", "activitynet", "does the car park on the meadow",
            lambda obj, frame: _category(obj, "car") and _doing(obj, "parked")
            and _in_context(obj, "meadow"),
            complexity="normal",
        ),
        QuerySpec(
            "EQ2", "activitynet", "is the person with a hat a man",
            lambda obj, frame: _category(obj, "man") and _has(obj, headwear="hat"),
            complexity="normal",
        ),
        QuerySpec(
            "EQ3", "activitynet", "is the person in the red life jacket outdoors",
            lambda obj, frame: _category(obj, "person")
            and _has(obj, clothing="red life jacket") and _in_context(obj, "outdoors"),
            complexity="normal",
        ),
        QuerySpec(
            "EQ4", "activitynet", "is the person in a grey skirt dancing in the room",
            lambda obj, frame: _category(obj, "person")
            and _has(obj, clothing="grey skirt") and _doing(obj, "dancing"),
            complexity="normal",
        ),
    ]
    return {spec.query_id: spec for spec in specs}


_QUERIES: Dict[str, QuerySpec] = _build_query_table()


def all_queries() -> List[QuerySpec]:
    """All query specifications, in the order of Table II / Table VI."""
    return list(_QUERIES.values())


def query_by_id(query_id: str) -> QuerySpec:
    """Look up one query spec by id (e.g. ``"Q2.2"``)."""
    try:
        return _QUERIES[query_id]
    except KeyError as error:
        raise EvaluationError(f"Unknown query id {query_id!r}") from error


def queries_for_dataset(dataset_name: str) -> List[QuerySpec]:
    """The queries designed for one dataset."""
    return [spec for spec in _QUERIES.values() if spec.dataset == dataset_name]


def build_ground_truth(
    dataset: VideoDataset,
    spec: QuerySpec,
    restrict_to_frames: Optional[Iterable[str]] = None,
) -> List[GroundTruthInstance]:
    """Ground-truth instances for a query over a dataset.

    A ground-truth *instance* is a distinct object (track id) satisfying the
    query predicate, together with its box in every frame where the predicate
    holds.  This mirrors the paper's ByteTrack-assisted labelling, where the
    annotated unit is the object rather than every individual frame pixel.

    Args:
        dataset: The annotated dataset.
        spec: The query specification.
        restrict_to_frames: Optionally restrict ground truth to a set of frame
            ids (e.g. the key frames a particular system actually indexed).

    Returns:
        One :class:`GroundTruthInstance` per distinct qualifying object.
    """
    allowed = set(restrict_to_frames) if restrict_to_frames is not None else None
    per_object: Dict[str, Dict[str, BoundingBox]] = {}
    for frame in dataset.iter_frames():
        if allowed is not None and frame.frame_id not in allowed:
            continue
        for annotation in frame.visible_objects():
            if spec.predicate(annotation, frame):
                per_object.setdefault(annotation.object_id, {})[frame.frame_id] = (
                    annotation.box.clipped()
                )
    return [
        GroundTruthInstance(object_id=object_id, boxes=boxes)
        for object_id, boxes in per_object.items()
    ]


def motivation_queries() -> Dict[str, List[str]]:
    """The three complexity levels used by the motivation experiment (Fig. 2)."""
    return {
        "simple": ["car"],
        "normal": ["red car in road", "large black car on road"],
        "complex": [
            "A red car side by side with another car, both positioned in the center of the road.",
            "A black SUV driving in the intersection of the road.",
        ],
    }
