"""Experiment runner: execute query workloads against any query system.

Both LOVO and the baseline systems expose the same minimal interface —
``ingest(dataset)`` once, ``query(text)`` per request, each returning a
:class:`~repro.core.results.QueryResponse` — so the benchmark harness can run
the paper's experiments uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

from repro.core.results import QueryResponse
from repro.errors import EvaluationError, UnsupportedQueryError
from repro.eval.metrics import GroundTruthInstance, evaluate_results
from repro.eval.workloads import QuerySpec, build_ground_truth
from repro.utils.timing import Stopwatch
from repro.video.model import VideoDataset


class VideoQuerySystem(Protocol):
    """Protocol every evaluated system implements (LOVO and baselines)."""

    def ingest(self, dataset: VideoDataset) -> object:
        """One-time (or per-system) video processing."""

    def query(self, text: str, top_n: int | None = None) -> QueryResponse:
        """Answer one object query."""


class BatchVideoQuerySystem(VideoQuerySystem, Protocol):
    """A query system that additionally supports batched multi-query answering.

    ``run_queries`` detects this capability (via ``hasattr``) and routes whole
    workloads through one :meth:`query_batch` call, which is how the Table II
    experiments exercise LOVO's batched engine.
    """

    def query_batch(self, texts: Sequence[str], top_n: int | None = None) -> object:
        """Answer several object queries in one pass."""


@dataclass
class ExperimentRecord:
    """Result of running one query against one system."""

    system: str
    query_id: str
    dataset: str
    average_precision: float
    search_seconds: float
    total_seconds: float
    num_results: int
    num_ground_truth: int
    timings: Dict[str, float] = field(default_factory=dict)
    supported: bool = True

    def as_row(self) -> List[object]:
        """Row representation used by the report formatter."""
        avep = f"{self.average_precision:.2f}" if self.supported else "unsupported"
        return [
            self.system,
            self.query_id,
            avep,
            f"{self.search_seconds:.4f}",
            f"{self.total_seconds:.4f}",
        ]


def run_queries(
    system: VideoQuerySystem,
    system_name: str,
    dataset: VideoDataset,
    specs: Sequence[QuerySpec],
    ingest_seconds: float = 0.0,
    top_multiplier: int = 10,
    ground_truth_cache: Optional[Dict[str, List[GroundTruthInstance]]] = None,
    batch: Optional[bool] = None,
) -> List[ExperimentRecord]:
    """Run a set of queries against an already-ingested system.

    Args:
        system: The system under test (already ingested).
        system_name: Label used in the records.
        dataset: The dataset the queries target (for ground truth).
        specs: Query specifications to execute.
        ingest_seconds: Offline processing time to fold into total time.
        top_multiplier: AveP is computed over ``top_multiplier x |GT|`` results.
        ground_truth_cache: Optional cache keyed by query id to avoid
            rebuilding ground truth for every system.
        batch: ``True`` to answer the whole workload with one
            ``query_batch`` call, ``False`` to force the sequential loop.
            The default (``None``) batches whenever the system supports it.

    Returns:
        One :class:`ExperimentRecord` per query.
    """
    use_batch = hasattr(system, "query_batch") if batch is None else batch
    ground_truths = [
        _resolve_ground_truth(dataset, spec, ground_truth_cache) for spec in specs
    ]
    if use_batch and specs:
        stopwatch = Stopwatch().start()
        try:
            responses = system.query_batch([spec.text for spec in specs])  # type: ignore[attr-defined]
        except UnsupportedQueryError:
            # A batch is all-or-nothing; fall through to the sequential loop,
            # which records unsupported queries individually.
            pass
        else:
            per_query_elapsed = stopwatch.stop() / len(specs)
            return [
                _make_record(
                    system_name, spec, response, ground_truth,
                    per_query_elapsed, ingest_seconds, top_multiplier, supported=True,
                )
                for spec, response, ground_truth in zip(specs, responses, ground_truths)
            ]

    records: List[ExperimentRecord] = []
    for spec, ground_truth in zip(specs, ground_truths):
        stopwatch = Stopwatch().start()
        try:
            response = system.query(spec.text)
            supported = True
        except UnsupportedQueryError:
            response = QueryResponse(query=spec.text, results=[], timings={})
            supported = False
        elapsed = stopwatch.stop()
        records.append(
            _make_record(
                system_name, spec, response, ground_truth,
                elapsed, ingest_seconds, top_multiplier, supported,
            )
        )
    return records


def _resolve_ground_truth(
    dataset: VideoDataset,
    spec: QuerySpec,
    cache: Optional[Dict[str, List[GroundTruthInstance]]],
) -> List[GroundTruthInstance]:
    """Fetch (or build and cache) the ground truth of one query spec."""
    if spec.dataset != dataset.name.split("[")[0]:
        raise EvaluationError(
            f"Query {spec.query_id} targets dataset {spec.dataset!r}, got {dataset.name!r}"
        )
    if cache is not None and spec.query_id in cache:
        ground_truth = cache[spec.query_id]
    else:
        ground_truth = build_ground_truth(dataset, spec)
        if cache is not None:
            cache[spec.query_id] = ground_truth
    if not ground_truth:
        raise EvaluationError(
            f"Query {spec.query_id} has no ground truth in dataset {dataset.name!r}; "
            "increase the dataset size or adjust the scene specification"
        )
    return ground_truth


def _make_record(
    system_name: str,
    spec: QuerySpec,
    response: QueryResponse,
    ground_truth: List[GroundTruthInstance],
    elapsed: float,
    ingest_seconds: float,
    top_multiplier: int,
    supported: bool,
) -> ExperimentRecord:
    """Assemble one experiment record from a query response."""
    avep = (
        evaluate_results(response.results, ground_truth, top_multiplier=top_multiplier)
        if supported
        else 0.0
    )
    return ExperimentRecord(
        system=system_name,
        query_id=spec.query_id,
        dataset=spec.dataset,
        average_precision=avep,
        search_seconds=response.search_seconds if supported else elapsed,
        total_seconds=elapsed + ingest_seconds,
        num_results=len(response.results),
        num_ground_truth=len(ground_truth),
        timings=dict(response.timings),
        supported=supported,
    )


def mean_average_precision(records: Sequence[ExperimentRecord]) -> float:
    """Mean AveP over a set of records (unsupported queries count as 0)."""
    if not records:
        return 0.0
    return sum(record.average_precision for record in records) / len(records)


def mean_search_seconds(records: Sequence[ExperimentRecord]) -> float:
    """Mean per-query search time over a set of records."""
    if not records:
        return 0.0
    return sum(record.search_seconds for record in records) / len(records)
