"""Retrieval metrics: IoU-based matching and Average Precision (paper §VII-A).

The paper scores every method with Average Precision (AveP), the area under
the precision-recall curve: retrieved objects are ranked by score, an object
counts as a true positive when its IoU with the ground-truth box in the same
frame exceeds 0.5 (MSCOCO convention), and each method is evaluated on its
top-(10 x |ground truth|) retrieved objects.

Ground truth is organised at the *instance* level: one
:class:`GroundTruthInstance` per distinct object that satisfies the query
predicate, carrying its per-frame boxes over the frames where the predicate
holds.  A retrieval matches an instance when it lands on any of those frames
with sufficient IoU, and each instance can be matched at most once — so a
system that keeps returning the same object over and over gains no extra
credit, mirroring the paper's observation that key-frame diversity matters
("retrieve diverse objects from different parts of long videos, instead of
focusing on one repeated object").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.core.results import ObjectQueryResult
from repro.errors import EvaluationError
from repro.utils.geometry import BoundingBox, iou


@dataclass(frozen=True)
class GroundTruthInstance:
    """One ground-truth object instance with its per-frame boxes."""

    object_id: str
    boxes: Mapping[str, BoundingBox] = field(default_factory=dict)

    @property
    def num_frames(self) -> int:
        """Number of frames in which the instance satisfies the query."""
        return len(self.boxes)

    def box_in(self, frame_id: str) -> BoundingBox | None:
        """The instance's box in ``frame_id``, or ``None`` if absent there."""
        return self.boxes.get(frame_id)


#: Backwards-compatible alias used in earlier revisions of the API.
GroundTruthObject = GroundTruthInstance


def match_results(
    results: Sequence[ObjectQueryResult],
    ground_truth: Sequence[GroundTruthInstance],
    iou_threshold: float = 0.5,
) -> List[bool | None]:
    """Greedy matching of ranked results against ground-truth instances.

    Results are processed in descending score order; each instance can be
    matched at most once.  Returns, for every ranked result:

    * ``True`` — the result localises a not-yet-matched instance (true
      positive);
    * ``None`` — the result localises an instance that an earlier, higher
      ranked result already matched (a duplicate view of the same object;
      collapsed, neither rewarded nor penalised);
    * ``False`` — the result does not localise any ground-truth instance
      (false positive).
    """
    if not 0.0 < iou_threshold < 1.0:
        raise EvaluationError("iou_threshold must lie strictly between 0 and 1")
    instances_by_frame: Dict[str, List[int]] = {}
    for index, instance in enumerate(ground_truth):
        for frame_id in instance.boxes:
            instances_by_frame.setdefault(frame_id, []).append(index)

    matched: set[int] = set()
    ranked = sorted(results, key=lambda result: result.score, reverse=True)
    relevances: List[bool | None] = []
    for result in ranked:
        outcome: bool | None = False
        for instance_index in instances_by_frame.get(result.frame_id, []):
            target_box = ground_truth[instance_index].boxes[result.frame_id]
            if iou(result.box, target_box) >= iou_threshold:
                if instance_index in matched:
                    outcome = None
                    continue
                matched.add(instance_index)
                outcome = True
                break
        relevances.append(outcome)
    return relevances


def average_precision(relevances: Sequence[bool | None], num_positives: int) -> float:
    """AP over a ranked relevance list with ``num_positives`` targets.

    ``AP = (1 / num_positives) * sum_i precision@i * rel_i``, the discrete
    area under the precision-recall curve.  Entries that are ``None``
    (collapsed duplicates of an already-matched instance) are skipped and do
    not advance the rank position.
    """
    if num_positives <= 0:
        raise EvaluationError("num_positives must be positive")
    hits = 0
    position = 0
    precision_sum = 0.0
    for relevant in relevances:
        if relevant is None:
            continue
        position += 1
        if relevant:
            hits += 1
            precision_sum += hits / position
    return precision_sum / num_positives


def precision_recall_points(
    relevances: Sequence[bool | None], num_positives: int
) -> List[tuple[float, float]]:
    """The (recall, precision) points of the ranked list (for plotting)."""
    if num_positives <= 0:
        raise EvaluationError("num_positives must be positive")
    points: List[tuple[float, float]] = []
    hits = 0
    position = 0
    for relevant in relevances:
        if relevant is None:
            continue
        position += 1
        if relevant:
            hits += 1
        points.append((hits / num_positives, hits / position))
    return points


def evaluate_results(
    results: Sequence[ObjectQueryResult],
    ground_truth: Sequence[GroundTruthInstance],
    iou_threshold: float = 0.5,
    top_multiplier: int = 10,
) -> float:
    """AveP of ranked results against ground truth, following the paper.

    Only the top ``top_multiplier x |ground truth|`` results are considered,
    matching the protocol in §VII-A.  Returns 0.0 when there are no results;
    raises when there is no ground truth (the query is ill-posed).
    """
    if not ground_truth:
        raise EvaluationError("Cannot evaluate a query with empty ground truth")
    if not results:
        return 0.0
    limit = top_multiplier * len(ground_truth)
    ranked = sorted(results, key=lambda result: result.score, reverse=True)[:limit]
    relevances = match_results(ranked, ground_truth, iou_threshold=iou_threshold)
    return average_precision(relevances, num_positives=len(ground_truth))


def recall_at_k(
    results: Sequence[ObjectQueryResult],
    ground_truth: Sequence[GroundTruthInstance],
    k: int,
    iou_threshold: float = 0.5,
) -> float:
    """Fraction of ground-truth instances recovered within the top ``k`` results."""
    if not ground_truth:
        raise EvaluationError("Cannot evaluate a query with empty ground truth")
    if k <= 0:
        return 0.0
    ranked = sorted(results, key=lambda result: result.score, reverse=True)[:k]
    relevances = match_results(ranked, ground_truth, iou_threshold=iou_threshold)
    return sum(1 for relevant in relevances if relevant) / len(ground_truth)
