"""Fig. 7 — qualitative analysis: top-1 retrieval for query Q4.2.

The paper inspects the highest-scoring frame each system returns for
"A green bus with the white roof driving on the road" (Beach dataset) and
annotates what went wrong for each baseline.  The benchmark reproduces that
inspection automatically: for every system it reports whether the top-ranked
box localises a green bus with a white roof, some other bus, or an unrelated
object.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import UnsupportedQueryError
from repro.eval.reporting import format_table
from repro.eval.workloads import query_by_id
from repro.utils.geometry import iou

from conftest import report

SYSTEMS = ["MIRIS", "FiGO", "UMT", "ZELDA", "VISA", "LOVO"]


def describe_top_result(system, dataset, spec) -> str:
    """Categorise the system's top-1 retrieval the way Fig. 7 annotates it."""
    try:
        response = system.query(spec.text)
    except UnsupportedQueryError:
        return "unsupported"
    if not response.results:
        return "no result"
    top = max(response.results, key=lambda result: result.score)
    frame = dataset.frame_by_id(top.frame_id)
    best_iou, best_object = 0.0, None
    for annotation in frame.visible_objects():
        overlap = iou(top.box, annotation.box.clipped())
        if overlap > best_iou:
            best_iou, best_object = overlap, annotation
    if best_object is None or best_iou < 0.5:
        return "incomplete or missed object"
    if spec.predicate(best_object, frame):
        return "correct (green bus, white roof)"
    if best_object.category == "bus":
        return f"bus but wrong appearance ({best_object.attributes.get('color')})"
    return f"wrong object ({best_object.attributes.get('color')} {best_object.category})"


def run_qualitative(bench_env) -> Dict[str, str]:
    dataset = bench_env.dataset("beach")
    spec = query_by_id("Q4.2")
    outcomes = {}
    for system_name in SYSTEMS:
        system, _ingest = bench_env.system(system_name, "beach")
        outcomes[system_name] = describe_top_result(system, dataset, spec)
    return outcomes


def test_fig7_qualitative(benchmark, bench_env):
    outcomes = benchmark.pedantic(run_qualitative, args=(bench_env,), rounds=1, iterations=1)
    rows = [[system, outcome] for system, outcome in outcomes.items()]
    table = format_table(
        ["system", "top-1 retrieval for Q4.2"],
        rows,
        title="Fig. 7: qualitative top-1 comparison on Q4.2 (green bus with white roof)",
    )
    report("fig7_qualitative", table)

    # The paper's headline: LOVO retrieves the correct object.
    assert outcomes["LOVO"].startswith("correct")
