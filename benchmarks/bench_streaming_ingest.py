"""Streaming ingest under load: sustained append QPS with concurrent queries.

The streaming subsystem's claim is that live segments flow into the indexes
without rebuilding them and without stalling the query path: appends publish
atomic copy-on-write views, so a query never waits on a segment being
indexed.  This benchmark measures

* sustained ingest throughput (segments/sec and vectors/sec) while a query
  loop hammers the same system, and
* query latency under live ingest versus the quiescent (no-ingest) baseline.

The acceptance gate: **query p50 under live ingest stays within 1.5x of the
quiescent p50** — streaming in new video must not visibly degrade readers.
The mechanism that makes the gate hold on small machines is the ingest
pipeline's duty-cycle pacer (``StreamConfig.max_duty_cycle``): capping the
pipeline at a small fraction of wall-clock time leaves most of the CPU to
the query path, at the cost of proportionally lower ingest throughput.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List

from repro import LOVO, StreamConfig
from repro.eval.reporting import format_table
from repro.eval.workloads import queries_for_dataset
from repro.stream import StreamingIngestor
from repro.video.datasets import make_bellevue

from conftest import bench_lovo_config, report

DATASET = "bellevue"
#: Base corpus: large enough that one query takes several times longer than
#: one paced work burst, so every query absorbs close to the average ingest
#: contention rather than a bimodal hit-or-miss slowdown (keeps p50 stable).
BASE_VIDEOS = 2
BASE_FRAMES = 300
#: Segments streamed in while the query loop runs: many small segments keep
#: the paced work bursts short and fine-grained.
NUM_SEGMENTS = 10
SEGMENT_FRAMES = 30
#: Queries answered per latency measurement pass.
QUERIES_PER_PASS = 24
#: The gate: live p50 must stay within this factor of quiescent p50.
P50_GATE = 1.5
#: Pipeline CPU share; leaves 1 - DUTY_CYCLE of the machine to queries.
DUTY_CYCLE = 0.15


def _tiled_queries(count: int) -> List[str]:
    texts = [spec.text for spec in queries_for_dataset(DATASET)]
    return (texts * (count // len(texts) + 1))[:count]


def _latency_pass(system: LOVO, texts: List[str]) -> List[float]:
    """Per-query latencies (seconds) of one serial measurement pass."""
    latencies = []
    for text in texts:
        start = time.perf_counter()
        system.query(text)
        latencies.append(time.perf_counter() - start)
    return latencies


def run_streaming_ingest() -> Dict[str, float]:
    """Quiescent vs under-ingest query latency plus sustained ingest rate."""
    system = LOVO(bench_lovo_config("flat"))
    system.ingest(make_bellevue(num_videos=BASE_VIDEOS, frames_per_video=BASE_FRAMES))
    texts = _tiled_queries(QUERIES_PER_PASS)

    # Warm the encoders/caches, then measure the quiescent baseline.
    _latency_pass(system, texts[:6])
    quiescent = _latency_pass(system, texts)

    # Distinct seeds keep segment video ids disjoint from the base dataset.
    segments = [
        make_bellevue(num_videos=1, frames_per_video=SEGMENT_FRAMES, seed=100 + i)
        for i in range(NUM_SEGMENTS)
    ]
    ingestor = StreamingIngestor(
        system, config=StreamConfig(max_duty_cycle=DUTY_CYCLE)
    ).start()
    live: List[float] = []
    try:
        ingest_start = time.perf_counter()
        tickets = [ingestor.submit(segment) for segment in segments]
        # Query continuously while the pipeline is busy; keep measuring until
        # every segment is queryable so the pass genuinely overlaps ingest.
        while any(not ticket.done for ticket in tickets):
            live.extend(_latency_pass(system, texts[:6]))
        for ticket in tickets:
            ticket.result(timeout=600)
        ingest_seconds = time.perf_counter() - ingest_start
        stats = ingestor.stats()
        assert stats["failed"] == 0, f"segments failed in the pipeline: {stats}"
        assert stats["lag"] == 0, f"segments left unindexed: {stats}"
    finally:
        ingestor.stop()

    if len(live) < 6:  # pipeline outran the first pass; take one more sample
        live.extend(_latency_pass(system, texts[:6]))

    quiescent_p50 = statistics.median(quiescent)
    live_p50 = statistics.median(live)
    return {
        "quiescent_p50_ms": quiescent_p50 * 1000.0,
        "live_p50_ms": live_p50 * 1000.0,
        "p50_ratio": live_p50 / quiescent_p50,
        "segments_per_sec": NUM_SEGMENTS / ingest_seconds,
        "vectors_per_sec": stats["entities"] / ingest_seconds,
        "entities_streamed": stats["entities"],
        "queries_under_ingest": len(live),
    }


def test_streaming_ingest_latency_gate(benchmark):
    results = benchmark.pedantic(run_streaming_ingest, rounds=1, iterations=1)

    table = format_table(
        ["metric", "value"],
        [
            ["quiescent query p50 (ms)", f"{results['quiescent_p50_ms']:.1f}"],
            ["query p50 under live ingest (ms)", f"{results['live_p50_ms']:.1f}"],
            ["p50 ratio (gate <= 1.5x)", f"{results['p50_ratio']:.2f}x"],
            ["ingest throughput (segments/s)", f"{results['segments_per_sec']:.2f}"],
            ["ingest throughput (vectors/s)", f"{results['vectors_per_sec']:.0f}"],
            ["vectors streamed", f"{results['entities_streamed']:.0f}"],
            ["queries answered under ingest", f"{results['queries_under_ingest']:.0f}"],
        ],
        title="Streaming ingest: query latency under live appends",
    )
    print()
    print(table)
    report("streaming_ingest", table)

    assert results["entities_streamed"] > 0
    assert results["p50_ratio"] <= P50_GATE, (
        f"query p50 under live ingest degraded {results['p50_ratio']:.2f}x "
        f"(gate: {P50_GATE}x)"
    )
