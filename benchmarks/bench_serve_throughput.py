"""Served throughput under concurrent load: the micro-batching engine vs serial.

The serving subsystem's claim is that micro-batching turns the batched
engine's amortisation (``query_batch``) into *served* throughput when many
independent clients each issue single queries.  This benchmark runs 16
concurrent client threads against a :class:`~repro.serve.ServingEngine`
(result cache disabled, so every request really exercises the engine) and
compares queries/sec against a serial single-query ``LOVO.query`` loop over
the same workload.

The flat-index configuration is the acceptance gate: the served path must
deliver at least 2x the serial throughput, and every concurrently served
response must be bit-identical to the serial answer for the same query.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro import LOVO, ServeConfig
from repro.eval.reporting import format_table
from repro.eval.workloads import queries_for_dataset
from repro.serve import ServingEngine

from conftest import bench_lovo_config, report

NUM_CLIENTS = 16
QUERIES_PER_CLIENT = 8
#: How many queries the serial baseline answers (kept smaller than the served
#: workload — throughput is a rate, so the comparison stays fair).
SERIAL_QUERIES = 24
DATASET = "bellevue"
NUM_VIDEOS = 1
FRAMES_PER_VIDEO = 200

SERVE_CONFIG = ServeConfig(
    num_workers=2,
    max_batch_size=NUM_CLIENTS * 2,
    max_wait_ms=4.0,
    queue_size=1024,
    cache_size=0,  # prove micro-batching, not caching
)


def _tiled_queries(dataset_name: str, count: int) -> List[str]:
    """The dataset's Table II queries repeated up to ``count``."""
    texts = [spec.text for spec in queries_for_dataset(dataset_name)]
    return (texts * (count // len(texts) + 1))[:count]


def _ingested_system(bench_env, index_type: str) -> LOVO:
    system = LOVO(bench_lovo_config(index_type))
    system.ingest(bench_env.dataset(DATASET, NUM_VIDEOS, FRAMES_PER_VIDEO))
    return system


def _result_key(response) -> List[tuple]:
    return [(r.frame_id, r.patch_id, r.score) for r in response.results]


def measure_index_type(bench_env, index_type: str) -> Dict[str, float]:
    """Serial and concurrently-served queries/sec for one index family."""
    serial_system = _ingested_system(bench_env, index_type)
    served_system = _ingested_system(bench_env, index_type)

    serial_texts = _tiled_queries(DATASET, SERIAL_QUERIES)
    start = time.perf_counter()
    serial_responses = {text: serial_system.query(text) for text in serial_texts}
    serial_qps = len(serial_texts) / (time.perf_counter() - start)

    client_texts = _tiled_queries(DATASET, QUERIES_PER_CLIENT)
    served_responses: Dict[str, list] = {}
    errors: List[BaseException] = []

    def client(offset: int) -> None:
        try:
            rotation = client_texts[offset:] + client_texts[:offset]
            for text in rotation:
                response = engine.query(text, timeout=120.0)
                served_responses.setdefault(text, _result_key(response))
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    with ServingEngine(served_system, SERVE_CONFIG) as engine:
        threads = [
            threading.Thread(target=client, args=(i % len(client_texts),))
            for i in range(NUM_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served_seconds = time.perf_counter() - start
        stats = engine.stats()
    if errors:
        raise errors[0]
    served_qps = (NUM_CLIENTS * QUERIES_PER_CLIENT) / served_seconds

    # Acceptance: every served answer is bit-identical to the serial one.
    for text in set(client_texts):
        assert served_responses[text] == _result_key(serial_responses[text]), text

    return {
        "serial_qps": serial_qps,
        "served_qps": served_qps,
        "speedup": served_qps / serial_qps,
        "mean_batch_size": stats["batches"]["mean_size"],
        "p95_latency_ms": stats["latency_ms"]["p95"],
    }


def run_serve_throughput(bench_env) -> Dict[str, Dict[str, float]]:
    """Served-vs-serial throughput across all three index families."""
    return {
        index_type: measure_index_type(bench_env, index_type)
        for index_type in ("flat", "ivfpq", "hnsw")
    }


def test_serve_throughput(benchmark, bench_env):
    results = benchmark.pedantic(
        run_serve_throughput, args=(bench_env,), rounds=1, iterations=1
    )

    rows = [
        [
            index_type,
            f"{values['serial_qps']:.1f}",
            f"{values['served_qps']:.1f}",
            f"{values['speedup']:.1f}x",
            f"{values['mean_batch_size']:.1f}",
            f"{values['p95_latency_ms']:.0f}",
        ]
        for index_type, values in results.items()
    ]
    table = format_table(
        ["index", "serial (q/s)", "served (q/s)", "speedup", "mean batch", "p95 (ms)"],
        rows,
        title=(
            f"Served query throughput ({NUM_CLIENTS} concurrent clients, "
            f"{DATASET}, cache disabled)"
        ),
    )
    report("serve_throughput", table)

    # Acceptance gate: micro-batching must deliver >= 2x serial throughput on
    # the flat index for 16 concurrent clients, and never serve slower than
    # the serial loop on any index family.
    assert results["flat"]["speedup"] >= 2.0
    for values in results.values():
        assert values["speedup"] >= 1.0