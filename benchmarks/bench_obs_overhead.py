"""Observability overhead: served throughput with tracing and sampling on/off.

Tracing promises to be cheap enough to leave on in production: every span is
a contextvar read plus a lock-guarded append, recorded only on the request's
own path.  The quality layer makes the same promise — shadow-recall sampling
runs in a background worker behind a drop-on-full queue, and EXPLAIN reports
are assembled from data the pass already recorded.  This benchmark serves
the same concurrent workload against three identically ingested sharded
systems:

* ``disabled`` — :class:`~repro.config.ObsConfig` off entirely;
* ``enabled`` — tracing + metrics on (the default), no shadow sampling;
* ``shadow`` — tracing on **plus** 5% shadow-recall sampling, with every
  client requesting a per-query EXPLAIN report (``options.explain=true``).

The three sides serve the **same concurrent workload simultaneously**:
every round starts one client pool per side behind a shared barrier, so
scheduler and background-load noise is common-mode — it slows all sides at
the same instant and cancels out of the gated ratios.  (Sequentially
interleaved rounds do not achieve this: load bursts here outlast a round
and wipe out whichever side happens to be running, swinging per-round
wall-clock QPS by ±25%.)  The sides are compared on pooled per-request
client-observed latency: served throughput per side is derived by Little's
law (``clients / mean latency`` at fixed per-side concurrency) and served
p50 is the pooled median.

Acceptance gates:

* tracing: ``enabled >= 0.95 * disabled`` QPS (PR 5's original gate);
* quality layer: ``shadow >= 0.95 * enabled`` QPS and served p50 with 5%
  sampling at most ``1.05x`` the unsampled p50;
* accuracy: the shadow-sampled online recall@10 estimate lands within
  ±0.05 of ground-truth recall computed by full exact re-scoring.
"""

from __future__ import annotations

import statistics
import threading
import time
from typing import Dict, List, Optional

from repro import LOVO, LOVOConfig, ObsConfig, ServeConfig
from repro.config import IndexConfig, KeyframeConfig, QueryConfig, ShardConfig
from repro.core.query import QueryOptions
from repro.eval.reporting import format_table
from repro.eval.workloads import queries_for_dataset
from repro.serve import ServingEngine

from conftest import BENCH_ENCODER, report

NUM_CLIENTS = 8
QUERIES_PER_CLIENT = 16
ROUNDS_PER_SIDE = 5
DATASET = "bellevue"
NUM_VIDEOS = 1
FRAMES_PER_VIDEO = 200
#: Shadow-sampling rate of the ``shadow`` side (the acceptance criterion's 5%).
SHADOW_SAMPLE_RATE = 0.05
#: Gate: each instrumented side must keep this fraction of its baseline QPS.
MIN_RELATIVE_QPS = 0.95
#: Gate: served p50 with sampling on may grow at most this much.
MAX_RELATIVE_P50 = 1.05
#: Gate: |online recall estimate - ground truth| must stay within this.
MAX_RECALL_ERROR = 0.05

SIDES = ("disabled", "enabled", "shadow")

SERVE_CONFIG = ServeConfig(
    num_workers=2,
    max_batch_size=NUM_CLIENTS * 2,
    max_wait_ms=4.0,
    queue_size=1024,
    cache_size=0,  # measure the engine, not the cache
)


def _obs_lovo_config(side: str) -> LOVOConfig:
    """A sharded configuration (so tracing crosses the scatter fan-out)."""
    obs = {
        "disabled": ObsConfig(enabled=False),
        "enabled": ObsConfig(enabled=True),
        "shadow": ObsConfig(enabled=True, shadow_sample_rate=SHADOW_SAMPLE_RATE),
    }[side]
    return LOVOConfig(
        encoder=BENCH_ENCODER,
        keyframes=KeyframeConfig(strategy="mvmed", uniform_stride=10),
        index=IndexConfig(index_type="flat"),
        query=QueryConfig(),
        shard=ShardConfig(num_shards=2),
        obs=obs,
    )


def _tiled_queries(count: int) -> List[str]:
    texts = [spec.text for spec in queries_for_dataset(DATASET)]
    return (texts * (count // len(texts) + 1))[:count]


def _served_round(
    engines: Dict[str, ServingEngine],
    client_options: Dict[str, Optional[QueryOptions]],
) -> Dict[str, List[float]]:
    """One simultaneous round: every side's client pool behind one barrier.

    Returns per-side per-request client-observed latencies in seconds.
    Running the sides at the same instant makes machine noise common-mode,
    so it cancels out of the relative gates.
    """
    client_texts = _tiled_queries(QUERIES_PER_CLIENT)
    errors: List[BaseException] = []
    latencies: Dict[str, List[float]] = {side: [] for side in engines}
    lock = threading.Lock()
    barrier = threading.Barrier(NUM_CLIENTS * len(engines))

    def client(side: str, offset: int) -> None:
        try:
            rotation = client_texts[offset:] + client_texts[:offset]
            engine = engines[side]
            options = client_options[side]
            local: List[float] = []
            barrier.wait()
            for text in rotation:
                begin = time.perf_counter()
                engine.query(text, timeout=120.0, options=options)
                local.append(time.perf_counter() - begin)
            with lock:
                latencies[side].extend(local)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(side, i % len(client_texts)))
        for side in engines
        for i in range(NUM_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return latencies


def _ground_truth_recall(system: LOVO, k: int) -> float:
    """Mean recall@k of served fast search vs a full exact re-scan."""
    encoder = system.text_encoder
    recalls = []
    for text in _tiled_queries(QUERIES_PER_CLIENT):
        served = system.query(text).metadata["fast_search"]["hits"]
        effective_k = min(k, len(served))
        vector = encoder.encode(encoder.parse(text))
        exact = system.storage.search(vector, effective_k, use_ann=False)
        served_top_k = {patch_id for patch_id, _ in served[:effective_k]}
        recalls.append(sum(1 for hit in exact if hit.id in served_top_k) / len(exact))
    return sum(recalls) / len(recalls)


def run_obs_overhead(bench_env) -> Dict[str, object]:
    """Interleaved served QPS: obs disabled vs enabled vs enabled+sampling."""
    dataset = bench_env.dataset(DATASET, NUM_VIDEOS, FRAMES_PER_VIDEO)
    systems = {}
    for side in SIDES:
        system = LOVO(_obs_lovo_config(side))
        system.ingest(dataset)
        systems[side] = system

    # The shadow side's clients also request EXPLAIN reports, so the gate
    # covers report assembly plus sampling, not sampling alone.
    client_options = {
        "disabled": None,
        "enabled": None,
        "shadow": QueryOptions(explain=True),
    }

    rounds: Dict[str, List[float]] = {side: [] for side in SIDES}
    latencies: Dict[str, List[float]] = {side: [] for side in SIDES}
    engines = {
        side: ServingEngine(system, SERVE_CONFIG).start()
        for side, system in systems.items()
    }
    try:
        # One simultaneous warm round (thread pools, allocator), then the
        # measured rounds — every side serving at the same instant.
        _served_round(engines, client_options)
        for _ in range(ROUNDS_PER_SIDE):
            observed = _served_round(engines, client_options)
            for side in SIDES:
                round_mean = statistics.fmean(observed[side])
                rounds[side].append(NUM_CLIENTS / round_mean)
                latencies[side].extend(observed[side])
        traced = engines["enabled"].tracer.store.stats()
        sampler = engines["shadow"].quality
        assert sampler is not None
        sampler.flush(timeout=60.0)
        quality = sampler.stats()
        explained = engines["shadow"].explain_store.stats()["stored"]
    finally:
        for engine in engines.values():
            engine.stop()

    recall_truth = _ground_truth_recall(systems["shadow"], k=sampler.recall_k)
    families = quality["families"]
    (family_stats,) = families.values()  # one family: sharded flat

    # Gate estimators from the pooled per-request latencies: throughput by
    # Little's law at fixed per-side concurrency, p50 as the pooled median.
    # The sides measured these under identical instantaneous machine load.
    throughput = {
        side: NUM_CLIENTS / statistics.fmean(values)
        for side, values in latencies.items()
    }
    p50 = {
        side: statistics.median(values) * 1000.0
        for side, values in latencies.items()
    }
    return {
        "qps": throughput,
        "rounds": rounds,
        "relative_enabled": throughput["enabled"] / throughput["disabled"],
        "relative_shadow": throughput["shadow"] / throughput["enabled"],
        "p50_enabled_ms": p50["enabled"],
        "p50_shadow_ms": p50["shadow"],
        "relative_p50": p50["shadow"] / max(p50["enabled"], 1e-9),
        "traces_stored": traced["stored"],
        "shadow_samples": family_stats["samples"],
        "recall_estimate": family_stats["recall_at_k"],
        "recall_truth": recall_truth,
        "explain_reports": explained,
    }


def test_obs_overhead(benchmark, bench_env):
    results = benchmark.pedantic(
        run_obs_overhead, args=(bench_env,), rounds=1, iterations=1
    )

    rows = [
        [
            side,
            f"{results['qps'][side]:.1f}",
            ", ".join(f"{qps:.1f}" for qps in results["rounds"][side]),
        ]
        for side in SIDES
    ]
    table = format_table(
        ["obs", "served (q/s)", "rounds (q/s)"],
        rows,
        title=(
            f"Observability overhead ({NUM_CLIENTS} concurrent clients, sharded; "
            f"tracing {results['relative_enabled']:.3f}x, "
            f"shadow+explain {results['relative_shadow']:.3f}x, "
            f"p50 {results['relative_p50']:.3f}x; "
            f"recall estimate {results['recall_estimate']:.3f} "
            f"vs truth {results['recall_truth']:.3f} "
            f"over {results['shadow_samples']} samples; "
            f"{results['traces_stored']} traces, "
            f"{results['explain_reports']} explain reports)"
        ),
    )
    report("obs_overhead", table)

    # Gate 1: tracing must cost at most 5% served throughput.
    assert results["relative_enabled"] >= MIN_RELATIVE_QPS, (
        f"tracing-enabled throughput {results['qps']['enabled']:.1f} q/s is below "
        f"{MIN_RELATIVE_QPS:.2f}x of disabled {results['qps']['disabled']:.1f} q/s"
    )
    # Gate 2: 5% shadow sampling + explain must also cost at most 5%.
    assert results["relative_shadow"] >= MIN_RELATIVE_QPS, (
        f"shadow-sampling throughput {results['qps']['shadow']:.1f} q/s is below "
        f"{MIN_RELATIVE_QPS:.2f}x of enabled {results['qps']['enabled']:.1f} q/s"
    )
    # Gate 3: served p50 with sampling stays within 1.05x of unsampled.
    assert results["relative_p50"] <= MAX_RELATIVE_P50, (
        f"p50 with 5% sampling {results['p50_shadow_ms']:.1f} ms exceeds "
        f"{MAX_RELATIVE_P50:.2f}x of unsampled {results['p50_enabled_ms']:.1f} ms"
    )
    # Gate 4: the online recall estimate agrees with exact re-scoring.
    assert results["shadow_samples"] > 0, "no shadow samples were processed"
    assert abs(results["recall_estimate"] - results["recall_truth"]) <= MAX_RECALL_ERROR, (
        f"online recall estimate {results['recall_estimate']:.3f} deviates more "
        f"than {MAX_RECALL_ERROR} from ground truth {results['recall_truth']:.3f}"
    )
    # Sanity: the instrumented sides actually traced and explained.
    assert results["traces_stored"] > 0
    assert results["explain_reports"] > 0
