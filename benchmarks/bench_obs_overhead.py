"""Observability overhead: served throughput with tracing on vs off.

Tracing promises to be cheap enough to leave on in production: every span is
a contextvar read plus a lock-guarded append, recorded only on the request's
own path.  This benchmark serves the same concurrent workload against two
identically ingested sharded systems — one with :class:`~repro.config.ObsConfig`
enabled (the default), one disabled — and compares queries/sec.

Rounds are interleaved with the order flipped every round (off/on, on/off,
...) so machine noise hits both configurations equally, and the sides are
compared on aggregate throughput across all rounds — individual short rounds
swing ±20% with scheduler noise, which the aggregate averages out.

The acceptance gate: tracing-enabled throughput must stay within 5% of
tracing-disabled throughput (``enabled >= 0.95 * disabled``).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro import LOVO, LOVOConfig, ObsConfig, ServeConfig
from repro.config import IndexConfig, KeyframeConfig, QueryConfig, ShardConfig
from repro.eval.reporting import format_table
from repro.eval.workloads import queries_for_dataset
from repro.serve import ServingEngine

from conftest import BENCH_ENCODER, report

NUM_CLIENTS = 8
QUERIES_PER_CLIENT = 16
ROUNDS_PER_SIDE = 3
DATASET = "bellevue"
NUM_VIDEOS = 1
FRAMES_PER_VIDEO = 200
#: The gate: tracing-enabled QPS must be at least this fraction of disabled.
MIN_RELATIVE_QPS = 0.95

SERVE_CONFIG = ServeConfig(
    num_workers=2,
    max_batch_size=NUM_CLIENTS * 2,
    max_wait_ms=4.0,
    queue_size=1024,
    cache_size=0,  # measure the engine, not the cache
)


def _obs_lovo_config(enabled: bool) -> LOVOConfig:
    """A sharded configuration (so tracing crosses the scatter fan-out)."""
    return LOVOConfig(
        encoder=BENCH_ENCODER,
        keyframes=KeyframeConfig(strategy="mvmed", uniform_stride=10),
        index=IndexConfig(index_type="flat"),
        query=QueryConfig(),
        shard=ShardConfig(num_shards=2),
        obs=ObsConfig(enabled=enabled),
    )


def _tiled_queries(count: int) -> List[str]:
    texts = [spec.text for spec in queries_for_dataset(DATASET)]
    return (texts * (count // len(texts) + 1))[:count]


def _served_qps(engine: ServingEngine) -> float:
    """Queries/sec for one round of the concurrent client workload."""
    client_texts = _tiled_queries(QUERIES_PER_CLIENT)
    errors: List[BaseException] = []

    def client(offset: int) -> None:
        try:
            rotation = client_texts[offset:] + client_texts[:offset]
            for text in rotation:
                engine.query(text, timeout=120.0)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(i % len(client_texts),))
        for i in range(NUM_CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return (NUM_CLIENTS * QUERIES_PER_CLIENT) / elapsed


def run_obs_overhead(bench_env) -> Dict[str, object]:
    """Best-of-N interleaved served QPS, tracing disabled vs enabled."""
    dataset = bench_env.dataset(DATASET, NUM_VIDEOS, FRAMES_PER_VIDEO)
    systems = {}
    for label, enabled in (("disabled", False), ("enabled", True)):
        system = LOVO(_obs_lovo_config(enabled))
        system.ingest(dataset)
        systems[label] = system

    rounds: Dict[str, List[float]] = {"disabled": [], "enabled": []}
    engines = {
        label: ServingEngine(system, SERVE_CONFIG).start()
        for label, system in systems.items()
    }
    try:
        # Warm one round per side (thread pools, allocator), then measure
        # interleaved with the order flipped every round, so neither side
        # systematically benefits from running first or last.
        for label in ("disabled", "enabled"):
            _served_qps(engines[label])
        for round_index in range(ROUNDS_PER_SIDE):
            order = ("disabled", "enabled") if round_index % 2 == 0 else (
                "enabled", "disabled")
            for label in order:
                rounds[label].append(_served_qps(engines[label]))
        traced = engines["enabled"].tracer.store.stats()
    finally:
        for engine in engines.values():
            engine.stop()

    # Aggregate (not best-of): total queries over total measured time per
    # side, which is what the interleaving makes comparable.
    aggregate = {
        label: len(values) / sum(1.0 / qps for qps in values)
        for label, values in rounds.items()
    }
    return {
        "disabled_qps": aggregate["disabled"],
        "enabled_qps": aggregate["enabled"],
        "relative": aggregate["enabled"] / aggregate["disabled"],
        "rounds_disabled": rounds["disabled"],
        "rounds_enabled": rounds["enabled"],
        "traces_stored": traced["stored"],
    }


def test_obs_overhead(benchmark, bench_env):
    results = benchmark.pedantic(
        run_obs_overhead, args=(bench_env,), rounds=1, iterations=1
    )

    rows = [
        [
            "disabled",
            f"{results['disabled_qps']:.1f}",
            ", ".join(f"{qps:.1f}" for qps in results["rounds_disabled"]),
        ],
        [
            "enabled",
            f"{results['enabled_qps']:.1f}",
            ", ".join(f"{qps:.1f}" for qps in results["rounds_enabled"]),
        ],
    ]
    table = format_table(
        ["tracing", "aggregate (q/s)", "rounds (q/s)"],
        rows,
        title=(
            f"Observability overhead ({NUM_CLIENTS} concurrent clients, sharded, "
            f"relative {results['relative']:.3f}, "
            f"{results['traces_stored']} traces stored)"
        ),
    )
    report("obs_overhead", table)

    # Acceptance gate: tracing must cost at most 5% served throughput.
    assert results["relative"] >= MIN_RELATIVE_QPS, (
        f"tracing-enabled throughput {results['enabled_qps']:.1f} q/s is below "
        f"{MIN_RELATIVE_QPS:.2f}x of disabled {results['disabled_qps']:.1f} q/s"
    )
    # Sanity: the enabled side actually traced the workload.
    assert results["traces_stored"] > 0
