"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(§VII).  Datasets and ingested systems are cached at session scope so the
expensive offline processing is paid once per system per dataset, exactly as
in the paper's methodology (one-time processing, many queries).

Each benchmark prints its paper-style table to stdout and also appends it to
``benchmarks/results/<experiment>.txt`` so results survive pytest's output
capture.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, Tuple

import pytest

from repro import LOVO, LOVOConfig
from repro.baselines import (
    FiGOBaseline,
    HybridBaseline,
    MIRISBaseline,
    UMTBaseline,
    VISABaseline,
    VOCALBaseline,
    ZELDABaseline,
)
from repro.config import EncoderConfig, IndexConfig, KeyframeConfig, QueryConfig
from repro.video.datasets import make_dataset
from repro.video.model import VideoDataset

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-scale datasets: the library defaults (three videos of 300 frames
#: per dataset) — large enough that every Table II query has ground-truth
#: instances and the latency orderings are stable, small enough that the whole
#: harness completes in a few minutes.
BENCH_NUM_VIDEOS = 3
BENCH_FRAMES_PER_VIDEO = 300

#: Encoder configuration shared by every system in the benchmarks.
BENCH_ENCODER = EncoderConfig(embedding_dim=128, class_embedding_dim=64, patch_grid=8)


def bench_lovo_config(index_type: str = "ivfpq", **query_overrides) -> LOVOConfig:
    """The LOVO configuration used throughout the benchmark harness."""
    return LOVOConfig(
        encoder=BENCH_ENCODER,
        keyframes=KeyframeConfig(strategy="mvmed", uniform_stride=10),
        index=IndexConfig(index_type=index_type),
        query=QueryConfig(**query_overrides) if query_overrides else QueryConfig(),
    )


class BenchEnvironment:
    """Caches datasets and ingested systems across benchmark modules."""

    def __init__(self) -> None:
        self._datasets: Dict[str, VideoDataset] = {}
        self._systems: Dict[Tuple[str, str], Tuple[object, float]] = {}

    def dataset(self, name: str, num_videos: int = BENCH_NUM_VIDEOS,
                frames_per_video: int = BENCH_FRAMES_PER_VIDEO) -> VideoDataset:
        """Build (or reuse) a benchmark dataset."""
        key = f"{name}:{num_videos}x{frames_per_video}"
        if key not in self._datasets:
            self._datasets[key] = make_dataset(
                name, num_videos=num_videos, frames_per_video=frames_per_video
            )
        return self._datasets[key]

    def system(self, system_name: str, dataset_name: str) -> Tuple[object, float]:
        """Build (or reuse) an ingested system; returns (system, ingest_seconds)."""
        key = (system_name, dataset_name)
        if key not in self._systems:
            dataset = self.dataset(dataset_name)
            builder = self._builders()[system_name]
            instance = builder()
            start = time.perf_counter()
            instance.ingest(dataset)
            ingest_seconds = time.perf_counter() - start
            self._systems[key] = (instance, ingest_seconds)
        return self._systems[key]

    @staticmethod
    def _builders() -> Dict[str, Callable[[], object]]:
        return {
            "LOVO": lambda: LOVO(bench_lovo_config()),
            "VOCAL": lambda: VOCALBaseline(BENCH_ENCODER),
            "MIRIS": lambda: MIRISBaseline(BENCH_ENCODER),
            "FiGO": lambda: FiGOBaseline(BENCH_ENCODER),
            "ZELDA": lambda: ZELDABaseline(BENCH_ENCODER),
            "UMT": lambda: UMTBaseline(BENCH_ENCODER),
            "VISA": lambda: VISABaseline(BENCH_ENCODER),
            "Hybrid": lambda: HybridBaseline(BENCH_ENCODER),
        }


@pytest.fixture(scope="session")
def bench_env() -> BenchEnvironment:
    """Session-wide cache of datasets and ingested systems."""
    return BenchEnvironment()


def report(experiment: str, text: str) -> None:
    """Print a report block and persist it under ``benchmarks/results/``."""
    banner = f"\n===== {experiment} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (RESULTS_DIR / f"{experiment}.txt").open("w", encoding="utf-8") as handle:
        handle.write(banner)
