"""Fig. 2 — motivation: runtime and capability of existing method families.

Reproduces the motivation experiment of §II: a QA-index method (VOCAL), a
QD-search method (MIRIS), a hybrid of the two, and a vision-based method
(ZELDA) are given queries of three complexity levels (simple / normal /
complex) on a Bellevue-like scene.  The benchmark reports per-query execution
time and whether each method supports each complexity level (QA-index methods
cannot express attribute or relational queries).
"""

from __future__ import annotations

import time

from repro.errors import UnsupportedQueryError
from repro.eval.reporting import format_table
from repro.eval.workloads import motivation_queries

from conftest import report

SYSTEMS = ["VOCAL", "MIRIS", "Hybrid", "ZELDA"]
FAMILY = {"VOCAL": "QA-index", "MIRIS": "QD-search", "Hybrid": "Hybrid", "ZELDA": "Vision-based"}


def run_motivation(bench_env):
    """Execute every complexity level against every method family."""
    rows = []
    per_family_latency = {}
    for system_name in SYSTEMS:
        system, _ingest = bench_env.system(system_name, "bellevue")
        for complexity, queries in motivation_queries().items():
            elapsed_total = 0.0
            supported = True
            for query in queries:
                start = time.perf_counter()
                try:
                    system.query(query)
                except UnsupportedQueryError:
                    supported = False
                elapsed_total += time.perf_counter() - start
            mean_elapsed = elapsed_total / len(queries)
            per_family_latency[(FAMILY[system_name], complexity)] = mean_elapsed
            rows.append([
                FAMILY[system_name],
                complexity,
                "yes" if supported else "unsupported",
                f"{mean_elapsed:.3f}",
            ])
    return rows, per_family_latency


def test_fig2_motivation(benchmark, bench_env):
    rows, latency = benchmark.pedantic(run_motivation, args=(bench_env,), rounds=1, iterations=1)
    table = format_table(
        ["method family", "query complexity", "supported", "mean runtime (s)"],
        rows,
        title="Fig. 2(a)/(b): execution time and capability per query complexity",
    )
    report("fig2_motivation", table)

    # Shape assertions from the paper: the QA-index family is fast but cannot
    # express complex queries, while QD-search pays a full scan per query.
    assert latency[("QA-index", "simple")] < latency[("QD-search", "simple")]
    unsupported = [row for row in rows if row[0] == "QA-index" and row[1] == "complex"]
    assert unsupported[0][2] == "unsupported"
