"""Fig. 10 — scalability with video duration.

Measures total execution time (processing + indexing + all queries) and
user-perceived query search time for VOCAL, MIRIS, FiGO, and LOVO as the
input video dataset grows, reproducing Fig. 10's scalability comparison.  The
paper's headline: LOVO's search time is almost flat in dataset size while the
QD-search systems grow linearly.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro import LOVO
from repro.baselines import FiGOBaseline, MIRISBaseline, VOCALBaseline
from repro.errors import UnsupportedQueryError
from repro.eval.reporting import format_table
from repro.eval.workloads import queries_for_dataset

from conftest import BENCH_ENCODER, bench_lovo_config, report

#: Dataset sizes (frames) for the sweep; the paper sweeps video duration.
SWEEP_FRAMES = [150, 300, 600, 900]
QUERIES = [spec.text for spec in queries_for_dataset("bellevue")[:2]]


def build_system(name: str):
    if name == "LOVO":
        return LOVO(bench_lovo_config())
    if name == "VOCAL":
        return VOCALBaseline(BENCH_ENCODER)
    if name == "MIRIS":
        return MIRISBaseline(BENCH_ENCODER)
    return FiGOBaseline(BENCH_ENCODER)


def run_scalability(bench_env) -> Dict[str, List[Dict[str, float]]]:
    base = bench_env.dataset("bellevue", num_videos=3, frames_per_video=300)
    results: Dict[str, List[Dict[str, float]]] = {}
    for system_name in ["VOCAL", "MIRIS", "FiGO", "LOVO"]:
        series = []
        for num_frames in SWEEP_FRAMES:
            dataset = base.subset(num_frames)
            system = build_system(system_name)
            start = time.perf_counter()
            system.ingest(dataset)
            ingest_seconds = time.perf_counter() - start

            search_seconds = 0.0
            for query in QUERIES:
                query_start = time.perf_counter()
                try:
                    response = system.query(query)
                    search_seconds += response.search_seconds
                except UnsupportedQueryError:
                    search_seconds += time.perf_counter() - query_start
            series.append({
                "frames": num_frames,
                "total": ingest_seconds + search_seconds,
                "search": search_seconds / len(QUERIES),
            })
        results[system_name] = series
    return results


def test_fig10_scalability(benchmark, bench_env):
    results = benchmark.pedantic(run_scalability, args=(bench_env,), rounds=1, iterations=1)

    rows = []
    for system_name, series in results.items():
        for point in series:
            rows.append([
                system_name, point["frames"], f"{point['total']:.3f}", f"{point['search']:.4f}"
            ])
    table = format_table(
        ["system", "frames", "total time (s)", "mean search time (s)"],
        rows,
        title="Fig. 10: total execution time and query search time vs dataset size",
    )
    report("fig10_scalability", table)

    # Shape assertions: QD-search query time grows with dataset size, while
    # LOVO's stays nearly flat and far below the QD-search systems at the
    # largest size.
    largest = SWEEP_FRAMES[-1]
    smallest = SWEEP_FRAMES[0]
    for name in ("MIRIS", "FiGO"):
        series = {point["frames"]: point for point in results[name]}
        assert series[largest]["search"] > series[smallest]["search"] * 2
    lovo = {point["frames"]: point for point in results["LOVO"]}
    figo = {point["frames"]: point for point in results["FiGO"]}
    assert lovo[largest]["search"] < figo[largest]["search"]
    # LOVO search grows sub-linearly in dataset size (its rerank cost is
    # bounded by max_candidate_frames and therefore saturates).
    data_growth = largest / smallest
    assert lovo[largest]["search"] < lovo[smallest]["search"] * data_growth
