"""Fig. 11 — scalability of LOVO's individual modules.

Four sweeps matching the paper's sub-figures:

* (a) video-processing time versus number of key frames processed;
* (b) fast-search latency versus number of indexed entities;
* (c) fast-search time per entity for each dataset;
* (d) cross-modality rerank time versus number of reranked objects.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.core.summary import VideoSummarizer
from repro.encoders.cross_modal import CandidatePatch, FrameCandidate
from repro.eval.reporting import format_table
from repro.eval.workloads import queries_for_dataset
from repro.vectordb.collection import VectorCollection
from repro.config import IndexConfig

from conftest import bench_lovo_config, report

DATASETS = ["cityscapes", "bellevue", "qvhighlights", "beach"]


def sweep_processing(bench_env) -> List[Dict[str, float]]:
    """(a) processing time as a function of the number of frames processed."""
    points = []
    summarizer = VideoSummarizer(bench_lovo_config())
    base = bench_env.dataset("bellevue", num_videos=3, frames_per_video=300)
    for frames in (150, 300, 600, 900):
        subset = base.subset(frames)
        start = time.perf_counter()
        output = summarizer.summarize(subset)
        elapsed = time.perf_counter() - start
        points.append({
            "frames": frames,
            "keyframes": output.num_keyframes,
            "seconds": elapsed,
            "seconds_per_frame": elapsed / frames,
        })
    return points


def sweep_index_size() -> List[Dict[str, float]]:
    """(b) fast-search latency as the number of indexed entities grows."""
    rng = np.random.default_rng(0)
    dim = 64
    points = []
    for num_entities in (2_000, 8_000, 32_000, 64_000):
        vectors = rng.normal(size=(num_entities, dim))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        collection = VectorCollection("sweep", dim, IndexConfig(num_coarse_clusters=32, nprobe=4))
        collection.insert([f"e{i}" for i in range(num_entities)], vectors)
        collection.flush()
        query = vectors[0]
        start = time.perf_counter()
        for _ in range(5):
            collection.search(query, 100)
        elapsed = (time.perf_counter() - start) / 5
        points.append({"entities": num_entities, "search_seconds": elapsed})
    return points


def sweep_per_entity(bench_env) -> List[Dict[str, float]]:
    """(c) fast-search time per indexed entity on every dataset."""
    points = []
    for dataset_name in DATASETS:
        system, _ingest = bench_env.system("LOVO", dataset_name)
        spec = queries_for_dataset(dataset_name)[0]
        response = system.query(spec.text)
        fast = response.timings.get("fast_search", 0.0)
        points.append({
            "dataset": dataset_name,
            "entities": system.num_entities,
            "seconds_per_entity": fast / max(system.num_entities, 1),
        })
    return points


def sweep_rerank(bench_env) -> List[Dict[str, float]]:
    """(d) rerank time as a function of the number of reranked objects."""
    system, _ingest = bench_env.system("LOVO", "bellevue")
    summarizer = system.summarizer
    parser = system.text_encoder
    parsed = parser.parse("A red car driving in the center of the road.")
    dataset = bench_env.dataset("bellevue")
    frames = [frame for video in dataset.videos for frame in video.frames[::10]]

    candidates = []
    for frame in frames:
        encodings = summarizer.encode_single_frame(frame, scene="bellevue")
        patches = tuple(
            CandidatePatch(e.patch_id, e.embedding, e.box, e.objectness) for e in encodings
        )
        candidates.append(FrameCandidate(frame_id=frame.frame_id, patches=patches))

    reranker = system._reranker  # internal access acceptable in benchmarks
    points = []
    for count in (5, 15, 30, 60):
        subset = candidates[:count]
        start = time.perf_counter()
        reranker.rerank(parsed, subset)
        elapsed = time.perf_counter() - start
        num_objects = sum(len(candidate.patches) for candidate in subset)
        points.append({"objects": num_objects, "rerank_seconds": elapsed})
    return points


def test_fig11_module_scalability(benchmark, bench_env):
    processing, index_sweep, per_entity, rerank_sweep = benchmark.pedantic(
        lambda env: (sweep_processing(env), sweep_index_size(), sweep_per_entity(env), sweep_rerank(env)),
        args=(bench_env,), rounds=1, iterations=1,
    )

    sections = []
    sections.append(format_table(
        ["frames", "keyframes", "processing (s)", "s / frame"],
        [[p["frames"], p["keyframes"], f"{p['seconds']:.3f}", f"{p['seconds_per_frame']:.5f}"]
         for p in processing],
        title="Fig. 11(a): processing time vs frame count",
    ))
    sections.append(format_table(
        ["entities", "fast search (s)"],
        [[p["entities"], f"{p['search_seconds']:.5f}"] for p in index_sweep],
        title="Fig. 11(b): fast-search time vs index size",
    ))
    sections.append(format_table(
        ["dataset", "entities", "search seconds per entity"],
        [[p["dataset"], p["entities"], f"{p['seconds_per_entity']:.2e}"] for p in per_entity],
        title="Fig. 11(c): fast-search time per entity",
    ))
    sections.append(format_table(
        ["objects reranked", "rerank (s)"],
        [[p["objects"], f"{p['rerank_seconds']:.3f}"] for p in rerank_sweep],
        title="Fig. 11(d): rerank time vs number of objects",
    ))
    report("fig11_module_scalability", "\n\n".join(sections))

    # Shape assertions: processing is roughly linear in the number of frames;
    # fast search grows far slower than the index (sub-linear); rerank grows
    # with the number of reranked objects.
    assert processing[-1]["seconds"] > processing[0]["seconds"]
    ratio_frames = processing[-1]["frames"] / processing[0]["frames"]
    ratio_seconds = processing[-1]["seconds"] / max(processing[0]["seconds"], 1e-9)
    assert ratio_seconds < ratio_frames * 3
    entity_growth = index_sweep[-1]["entities"] / index_sweep[0]["entities"]
    latency_growth = index_sweep[-1]["search_seconds"] / max(index_sweep[0]["search_seconds"], 1e-9)
    assert latency_growth < entity_growth
    assert rerank_sweep[-1]["rerank_seconds"] > rerank_sweep[0]["rerank_seconds"]
