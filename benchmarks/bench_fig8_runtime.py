"""Fig. 8 — runtime comparison of MIRIS, FiGO, and LOVO on every dataset.

For each of the four datasets the benchmark measures, per query, the search
time (what the user waits for) and the total execution time (search plus the
per-query or amortised processing), then prints the acceleration factors
relative to the slowest system — the same presentation as Fig. 8.
"""

from __future__ import annotations

from typing import Dict

from repro.eval.reporting import format_table, speedup_factors
from repro.eval.runner import run_queries
from repro.eval.workloads import queries_for_dataset

from conftest import report

SYSTEMS = ["MIRIS", "FiGO", "LOVO"]
DATASETS = ["cityscapes", "bellevue", "qvhighlights", "beach"]


def run_runtime_comparison(bench_env) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per dataset and system: mean search seconds and mean total seconds."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for dataset_name in DATASETS:
        dataset = bench_env.dataset(dataset_name)
        specs = queries_for_dataset(dataset_name)
        cache: Dict[str, list] = {}
        results[dataset_name] = {}
        for system_name in SYSTEMS:
            system, ingest_seconds = bench_env.system(system_name, dataset_name)
            records = run_queries(
                system, system_name, dataset, specs,
                ingest_seconds=ingest_seconds / max(len(specs), 1),
                ground_truth_cache=cache,
            )
            mean_search = sum(r.search_seconds for r in records) / len(records)
            mean_total = sum(r.total_seconds for r in records) / len(records)
            results[dataset_name][system_name] = {
                "search": mean_search,
                "total": mean_total,
            }
    return results


def test_fig8_runtime(benchmark, bench_env):
    results = benchmark.pedantic(run_runtime_comparison, args=(bench_env,), rounds=1, iterations=1)

    rows = []
    for dataset_name, per_system in results.items():
        search_factors = speedup_factors({name: v["search"] for name, v in per_system.items()})
        total_factors = speedup_factors({name: v["total"] for name, v in per_system.items()})
        for system_name in SYSTEMS:
            rows.append([
                dataset_name,
                system_name,
                f"{per_system[system_name]['search']:.3f}",
                f"{search_factors[system_name]:.1f}x",
                f"{per_system[system_name]['total']:.3f}",
                f"{total_factors[system_name]:.1f}x",
            ])
    table = format_table(
        ["dataset", "system", "search (s)", "search speedup", "total (s)", "total speedup"],
        rows,
        title="Fig. 8: per-query search and total runtime (speedups vs slowest)",
    )
    report("fig8_runtime", table)

    # Shape assertions from the paper: LOVO's search is the fastest on every
    # dataset, FiGO's search is the slowest, and LOVO beats both QD-search
    # systems on total time as well.
    for per_system in results.values():
        assert per_system["LOVO"]["search"] < per_system["MIRIS"]["search"]
        assert per_system["LOVO"]["search"] < per_system["FiGO"]["search"]
        assert per_system["FiGO"]["search"] > per_system["MIRIS"]["search"]
        assert per_system["LOVO"]["total"] < per_system["MIRIS"]["total"]
        assert per_system["LOVO"]["total"] < per_system["FiGO"]["total"]
