"""Tables VI/VII — query-type extension on ActivityNet-QA style questions.

Runs the four yes/no extension queries (EQ1–EQ4) against LOVO on the
ActivityNet-like dataset and reports AveP, search time, and total time, as
Table VII does.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.eval.metrics import evaluate_results
from repro.eval.reporting import format_table
from repro.eval.workloads import build_ground_truth, queries_for_dataset

from conftest import report


def run_extension_queries(bench_env) -> Dict[str, Dict[str, float]]:
    dataset = bench_env.dataset("activitynet")
    system, ingest_seconds = bench_env.system("LOVO", "activitynet")
    results: Dict[str, Dict[str, float]] = {}
    for spec in queries_for_dataset("activitynet"):
        ground_truth = build_ground_truth(dataset, spec)
        start = time.perf_counter()
        response = system.query(spec.text)
        elapsed = time.perf_counter() - start
        results[spec.query_id] = {
            "avep": evaluate_results(response.results, ground_truth),
            "search": response.search_seconds,
            "total": ingest_seconds + elapsed,
        }
    return results


def test_table7_activitynet_extension(benchmark, bench_env):
    results = benchmark.pedantic(run_extension_queries, args=(bench_env,), rounds=1, iterations=1)
    query_ids = sorted(results.keys())
    rows = []
    for metric in ("avep", "search", "total"):
        row = [metric]
        for query_id in query_ids:
            value = results[query_id][metric]
            row.append(f"{value:.2f}" if metric == "avep" else f"{value:.3f}")
        rows.append(row)
    table = format_table(
        ["metric"] + query_ids,
        rows,
        title="Table VII: LOVO on ActivityNet-QA extension queries (EQ1-EQ4)",
    )
    report("table7_activitynet", table)

    # Shape assertion from the paper: LOVO handles the question-style queries
    # with promising accuracy on every one of them.
    for query_id in query_ids:
        assert results[query_id]["avep"] > 0.0
    assert sum(results[q]["avep"] for q in query_ids) / len(query_ids) > 0.3
