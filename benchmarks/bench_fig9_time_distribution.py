"""Fig. 9 — distribution of LOVO's execution time across its phases.

Splits LOVO's total execution time on each dataset into video processing,
cross-modality rerank, and indexing + fast search, as Fig. 9 does.  A fresh
LOVO instance is used per dataset so the breakdown reflects exactly one
ingestion plus that dataset's Table II queries.
"""

from __future__ import annotations

from typing import Dict

from repro import LOVO
from repro.eval.reporting import format_table
from repro.eval.workloads import queries_for_dataset

from conftest import bench_lovo_config, report

DATASETS = ["cityscapes", "bellevue", "qvhighlights", "beach"]


def run_time_distribution(bench_env) -> Dict[str, Dict[str, float]]:
    distributions: Dict[str, Dict[str, float]] = {}
    for dataset_name in DATASETS:
        system = LOVO(bench_lovo_config())
        system.ingest(bench_env.dataset(dataset_name))
        for spec in queries_for_dataset(dataset_name):
            system.query(spec.text)
        distributions[dataset_name] = system.time_distribution()
    return distributions


def test_fig9_time_distribution(benchmark, bench_env):
    distributions = benchmark.pedantic(
        run_time_distribution, args=(bench_env,), rounds=1, iterations=1
    )
    rows = []
    for dataset_name, phases in distributions.items():
        total = sum(phases.values())
        rows.append([
            dataset_name,
            f"{phases['processing']:.3f}",
            f"{phases['rerank']:.3f}",
            f"{phases['indexing_fast_search']:.3f}",
            f"{100 * phases['processing'] / total:.1f}%",
        ])
    table = format_table(
        ["dataset", "processing (s)", "rerank (s)", "indexing + fast search (s)",
         "processing share"],
        rows,
        title="Fig. 9: LOVO execution-time distribution per dataset",
    )
    report("fig9_time_distribution", table)

    # Shape assertions from the paper: indexing + fast search is by far the
    # smallest share, rerank is the dominant *query-time* cost, and the
    # one-time (offline) processing carries a substantial share of the total.
    for phases in distributions.values():
        assert phases["indexing_fast_search"] < phases["rerank"]
        assert phases["indexing_fast_search"] < phases["processing"]
        assert phases["processing"] > 0.3 * max(phases.values())
