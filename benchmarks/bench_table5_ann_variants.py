"""Table V — LOVO with different ANN index variants (BF, IVF-PQ, HNSW).

Runs the four Cityscapes queries (Q1.1–Q1.4) with brute-force, inverted
multi-index with product quantization, and HNSW graph indexing, reporting
AveP, per-query search time, and total time for each variant.
"""

from __future__ import annotations

import time
from typing import Dict

from repro import LOVO
from repro.eval.metrics import evaluate_results
from repro.eval.reporting import format_table
from repro.eval.workloads import build_ground_truth, queries_for_dataset

from conftest import bench_lovo_config, report

VARIANTS = {
    "LOVO(BF)": "flat",
    "LOVO(IVF-PQ)": "ivfpq",
    "LOVO(HNSW)": "hnsw",
}


def run_ann_variants(bench_env) -> Dict[str, Dict[str, Dict[str, float]]]:
    dataset = bench_env.dataset("cityscapes")
    specs = queries_for_dataset("cityscapes")
    ground_truth = {spec.query_id: build_ground_truth(dataset, spec) for spec in specs}

    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for variant_name, index_type in VARIANTS.items():
        config = bench_lovo_config(index_type=index_type)
        system = LOVO(config)
        start = time.perf_counter()
        system.ingest(dataset)
        ingest_seconds = time.perf_counter() - start
        results[variant_name] = {}
        for spec in specs:
            response = system.query(spec.text)
            results[variant_name][spec.query_id] = {
                "avep": evaluate_results(response.results, ground_truth[spec.query_id]),
                "search": response.search_seconds,
                "total": ingest_seconds + response.search_seconds,
            }
    return results


def test_table5_ann_variants(benchmark, bench_env):
    results = benchmark.pedantic(run_ann_variants, args=(bench_env,), rounds=1, iterations=1)
    query_ids = sorted(next(iter(results.values())).keys())

    rows = []
    for variant_name, per_query in results.items():
        for metric in ("avep", "search", "total"):
            row = [variant_name, metric]
            for query_id in query_ids:
                value = per_query[query_id][metric]
                row.append(f"{value:.2f}" if metric == "avep" else f"{value:.3f}")
            rows.append(row)
    table = format_table(
        ["variant", "metric"] + query_ids,
        rows,
        title="Table V: LOVO accuracy and latency across ANN index variants",
    )
    report("table5_ann_variants", table)

    # Shape assertions from the paper: every variant answers every query with
    # useful accuracy, and the approximate indexes do not catastrophically
    # lose accuracy relative to brute force.
    for per_query in results.values():
        for query_id in query_ids:
            assert per_query[query_id]["avep"] >= 0.0
    mean_bf = sum(results["LOVO(BF)"][q]["avep"] for q in query_ids) / len(query_ids)
    mean_ivfpq = sum(results["LOVO(IVF-PQ)"][q]["avep"] for q in query_ids) / len(query_ids)
    mean_hnsw = sum(results["LOVO(HNSW)"][q]["avep"] for q in query_ids) / len(query_ids)
    assert mean_ivfpq > mean_bf - 0.25
    assert mean_hnsw > mean_bf - 0.25
