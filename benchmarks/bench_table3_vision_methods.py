"""Table III — processing / search / total time of ZELDA, UMT, VISA, and LOVO.

The vision-based and end-to-end baselines are assessed separately from the
QD-search systems, splitting their cost into video processing (offline) and
query search (per query, averaged over the dataset's Table II queries).
"""

from __future__ import annotations

from typing import Dict

from repro.eval.reporting import format_table
from repro.eval.runner import run_queries
from repro.eval.workloads import queries_for_dataset

from conftest import report

SYSTEMS = ["ZELDA", "UMT", "VISA", "LOVO"]
DATASETS = ["cityscapes", "bellevue", "qvhighlights", "beach"]


def run_vision_comparison(bench_env) -> Dict[str, Dict[str, Dict[str, float]]]:
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for dataset_name in DATASETS:
        dataset = bench_env.dataset(dataset_name)
        specs = queries_for_dataset(dataset_name)
        cache: Dict[str, list] = {}
        results[dataset_name] = {}
        for system_name in SYSTEMS:
            system, ingest_seconds = bench_env.system(system_name, dataset_name)
            records = run_queries(system, system_name, dataset, specs,
                                  ground_truth_cache=cache)
            mean_search = sum(r.search_seconds for r in records) / len(records)
            results[dataset_name][system_name] = {
                "processing": ingest_seconds,
                "search": mean_search,
                "total": ingest_seconds + mean_search,
            }
    return results


def test_table3_vision_methods(benchmark, bench_env):
    results = benchmark.pedantic(run_vision_comparison, args=(bench_env,), rounds=1, iterations=1)

    rows = []
    for system_name in SYSTEMS:
        for phase in ("processing", "search", "total"):
            row = [system_name, phase]
            for dataset_name in DATASETS:
                row.append(f"{results[dataset_name][system_name][phase]:.3f}")
            rows.append(row)
    table = format_table(
        ["system", "phase"] + DATASETS,
        rows,
        title="Table III: processing / search / total seconds for vision-based methods and LOVO",
    )
    report("table3_vision_methods", table)

    # Shape assertions from the paper: ZELDA's search is faster than LOVO's
    # (no rerank), UMT's search dominates its processing, and VISA is the
    # slowest overall.
    for dataset_name in DATASETS:
        per_system = results[dataset_name]
        assert per_system["ZELDA"]["search"] < per_system["LOVO"]["search"]
        assert per_system["UMT"]["search"] > per_system["UMT"]["processing"]
        assert per_system["VISA"]["total"] == max(v["total"] for v in per_system.values())
