"""Snapshot warm start: loading a persisted system vs re-running ingest.

The paper's economics are "process and index once, serve queries forever":
the offline summary phase dominates total cost (Fig. 9) precisely because it
is paid a single time.  The snapshot persistence subsystem makes that story
hold across processes — this benchmark measures, for each index family, the
one-time ingest cost against the cost of ``LOVO.load`` from a snapshot, and
verifies the warm-started system answers queries bit-identically.

Acceptance gate: on the Bellevue synthetic dataset the warm load must be at
least 5x faster than re-ingesting, for every index family.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro import LOVO
from repro.eval.reporting import format_table
from repro.eval.workloads import queries_for_dataset

from conftest import bench_lovo_config, report

DATASET = "bellevue"
NUM_VIDEOS = 1
FRAMES_PER_VIDEO = 300
WARM_START_SPEEDUP_GATE = 5.0


def _queries() -> List[str]:
    return [spec.text for spec in queries_for_dataset(DATASET)]


def measure_index_type(bench_env, index_type: str, snapshot_dir) -> Dict[str, float]:
    """Ingest/save/load timings plus parity for one index family."""
    dataset = bench_env.dataset(DATASET, NUM_VIDEOS, FRAMES_PER_VIDEO)

    # Cold start pays system construction plus the full ingest pipeline —
    # exactly what a process restart costs without persistence.  Warm start
    # (LOVO.load) also includes construction, so the comparison is
    # end-to-end on both sides.
    start = time.perf_counter()
    system = LOVO(bench_lovo_config(index_type))
    system.ingest(dataset)
    ingest_seconds = time.perf_counter() - start

    root = snapshot_dir / index_type
    start = time.perf_counter()
    system.save(root)
    save_seconds = time.perf_counter() - start

    start = time.perf_counter()
    loaded = LOVO.load(root)
    load_seconds = time.perf_counter() - start

    # The warm-started system must reproduce the original results exactly.
    for text in _queries():
        before = [(r.frame_id, r.patch_id, r.score) for r in system.query(text).results]
        after = [(r.frame_id, r.patch_id, r.score) for r in loaded.query(text).results]
        assert after == before, f"Snapshot parity violated for {index_type}: {text!r}"

    return {
        "ingest_s": ingest_seconds,
        "save_s": save_seconds,
        "load_s": load_seconds,
        "speedup": ingest_seconds / load_seconds,
    }


def run_snapshot_warm_start(bench_env, snapshot_dir) -> Dict[str, Dict[str, float]]:
    return {
        index_type: measure_index_type(bench_env, index_type, snapshot_dir)
        for index_type in ("flat", "ivfpq", "hnsw")
    }


def test_snapshot_warm_start(benchmark, bench_env, tmp_path):
    results = benchmark.pedantic(
        run_snapshot_warm_start, args=(bench_env, tmp_path), rounds=1, iterations=1
    )

    rows = [
        [
            index_type,
            f"{values['ingest_s']:.2f}",
            f"{values['save_s']:.3f}",
            f"{values['load_s']:.3f}",
            f"{values['speedup']:.1f}x",
        ]
        for index_type, values in results.items()
    ]
    table = format_table(
        ["index", "ingest (s)", "save (s)", "load (s)", "warm-start speedup"],
        rows,
        title=f"Snapshot warm start vs re-ingest ({DATASET}, {FRAMES_PER_VIDEO} frames)",
    )
    report("snapshot_warm_start", table)

    # Acceptance gate: warm load beats re-ingest by >= 5x on every family.
    for index_type, values in results.items():
        assert values["speedup"] >= WARM_START_SPEEDUP_GATE, (
            f"{index_type}: load took {values['load_s']:.3f}s vs "
            f"{values['ingest_s']:.3f}s ingest ({values['speedup']:.1f}x < "
            f"{WARM_START_SPEEDUP_GATE}x)"
        )
