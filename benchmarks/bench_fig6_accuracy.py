"""Fig. 6 — query accuracy (AveP) of LOVO against every baseline.

Runs the sixteen Table II queries (Q1.1–Q4.4) on their four synthetic
datasets for LOVO, VOCAL, MIRIS, FiGO, ZELDA, UMT, and VISA, and reports the
per-query Average Precision exactly as Fig. 6 does (VOCAL shows "unsupported"
for queries its index cannot express).
"""

from __future__ import annotations

from typing import Dict, List

from repro.eval.reporting import format_table
from repro.eval.runner import mean_average_precision, run_queries
from repro.eval.workloads import queries_for_dataset

from conftest import report

SYSTEMS = ["LOVO", "VOCAL", "MIRIS", "FiGO", "ZELDA", "UMT", "VISA"]
DATASETS = ["cityscapes", "bellevue", "qvhighlights", "beach"]


def run_accuracy_comparison(bench_env) -> Dict[str, List]:
    """Evaluate every system on every Table II query."""
    per_system_records: Dict[str, List] = {name: [] for name in SYSTEMS}
    for dataset_name in DATASETS:
        dataset = bench_env.dataset(dataset_name)
        specs = queries_for_dataset(dataset_name)
        ground_truth_cache: Dict[str, list] = {}
        for system_name in SYSTEMS:
            system, ingest_seconds = bench_env.system(system_name, dataset_name)
            records = run_queries(
                system, system_name, dataset, specs,
                ingest_seconds=ingest_seconds,
                ground_truth_cache=ground_truth_cache,
            )
            per_system_records[system_name].extend(records)
    return per_system_records


def test_fig6_accuracy(benchmark, bench_env):
    per_system = benchmark.pedantic(
        run_accuracy_comparison, args=(bench_env,), rounds=1, iterations=1
    )

    query_ids = [record.query_id for record in per_system["LOVO"]]
    rows = []
    for system_name in SYSTEMS:
        by_query = {record.query_id: record for record in per_system[system_name]}
        row = [system_name]
        for query_id in query_ids:
            record = by_query[query_id]
            row.append(f"{record.average_precision:.2f}" if record.supported else "unsup")
        row.append(f"{mean_average_precision(per_system[system_name]):.3f}")
        rows.append(row)
    table = format_table(
        ["system"] + query_ids + ["mean"],
        rows,
        title="Fig. 6: AveP per query (Q1.1-Q4.4)",
    )
    report("fig6_accuracy", table)

    # Shape assertions from the paper: LOVO attains the best mean AveP (up to
    # a small timing-free tolerance for simulator noise), VOCAL cannot answer
    # most queries, and LOVO clearly beats the QD-search baselines on the
    # complex relational queries (Q2.2, Q3.4).
    means = {name: mean_average_precision(per_system[name]) for name in SYSTEMS}
    assert means["LOVO"] >= max(means.values()) - 0.03
    vocal_supported = [record for record in per_system["VOCAL"] if record.supported]
    assert len(vocal_supported) <= len(query_ids) // 2
    lovo_by_query = {record.query_id: record for record in per_system["LOVO"]}
    for baseline in ("MIRIS", "FiGO"):
        baseline_by_query = {record.query_id: record for record in per_system[baseline]}
        for complex_query in ("Q2.2", "Q3.4"):
            assert (
                lovo_by_query[complex_query].average_precision
                >= baseline_by_query[complex_query].average_precision
            )
