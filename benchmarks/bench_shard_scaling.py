"""Scatter-gather scaling: single-query throughput, 1 shard vs 4 shards.

The sharded database's performance claim is that fanning one query out
across N shards cuts its latency toward 1/N of the single-database scan —
the per-shard matrices are N times smaller and are scanned concurrently
(NumPy releases the GIL inside the BLAS, so shard threads genuinely overlap).

This benchmark builds the same 120k x 96 flat-index collection behind a
1-shard and a 4-shard :class:`~repro.shard.ShardedDatabase` (the 1-shard
router answers inline, so the baseline pays zero scatter overhead) and
compares single-query QPS.  Run it with BLAS threading pinned
(``OPENBLAS_NUM_THREADS=1`` etc., as the CI job does) — otherwise the
baseline's GEMMs multi-thread internally and the comparison measures BLAS
configuration, not sharding.

Acceptance gates: >= 2x single-query throughput at 4 shards, and every
sharded answer bit-identical to the 1-shard answer.  The speedup gate only
applies when the machine exposes at least 4 cores — thread-level
scatter-gather cannot beat a single thread on fewer cores, so on smaller
boxes the benchmark still runs (and still enforces parity) but reports the
scaling numbers without failing.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import numpy as np
import pytest

from repro.config import IndexConfig, ShardConfig
from repro.eval.reporting import format_table
from repro.shard import ShardedDatabase

from conftest import report

NUM_VECTORS = 120_000
DIM = 96
NUM_QUERIES = 30
TOP_K = 10
SHARD_COUNTS = (1, 2, 4)
#: The acceptance gate: minimum single-query speedup at 4 shards.
MIN_SPEEDUP_AT_4 = 2.0
#: The speedup gate needs one core per shard to be physically meaningful.
MIN_CORES_FOR_GATE = 4


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _build_database(num_shards: int, ids: List[str], vectors: np.ndarray) -> ShardedDatabase:
    database = ShardedDatabase(ShardConfig(num_shards=num_shards))
    collection = database.create_collection(
        "bench", DIM, IndexConfig(index_type="flat")
    )
    collection.insert(ids, vectors)
    collection.flush()
    return database


def _hit_key(hits) -> List[tuple]:
    return [(hit.id, hit.score) for hit in hits]


def run_shard_scaling() -> Dict[int, Dict[str, float]]:
    """Single-query QPS per shard count over one shared synthetic corpus."""
    rng = np.random.default_rng(1234)
    ids = [f"vec-{i:06d}" for i in range(NUM_VECTORS)]
    vectors = rng.normal(size=(NUM_VECTORS, DIM))
    queries = rng.normal(size=(NUM_QUERIES, DIM))

    results: Dict[int, Dict[str, float]] = {}
    baseline_answers: List[List[tuple]] = []
    for num_shards in SHARD_COUNTS:
        database = _build_database(num_shards, ids, vectors)
        # Warm up once (finalises builds, faults pages in) before timing.
        database.search("bench", queries[0], TOP_K)
        answers = []
        start = time.perf_counter()
        for query in queries:
            answers.append(_hit_key(database.search("bench", query, TOP_K)))
        elapsed = time.perf_counter() - start
        if num_shards == SHARD_COUNTS[0]:
            baseline_answers = answers
        else:
            # Parity gate: scatter-gather must change nothing but the speed.
            assert answers == baseline_answers, f"parity broke at {num_shards} shards"
        results[num_shards] = {
            "qps": NUM_QUERIES / elapsed,
            "p_latency_ms": 1000.0 * elapsed / NUM_QUERIES,
        }
        database.router.close()

    base_qps = results[SHARD_COUNTS[0]]["qps"]
    for num_shards in SHARD_COUNTS:
        results[num_shards]["speedup"] = results[num_shards]["qps"] / base_qps
    return results


def test_shard_scaling(benchmark):
    results = benchmark.pedantic(run_shard_scaling, rounds=1, iterations=1)

    rows = [
        [
            str(num_shards),
            f"{values['qps']:.1f}",
            f"{values['p_latency_ms']:.2f}",
            f"{values['speedup']:.2f}x",
        ]
        for num_shards, values in sorted(results.items())
    ]
    table = format_table(
        ["shards", "queries/s", "mean latency (ms)", "speedup"],
        rows,
        title=(
            f"Scatter-gather scaling (flat index, {NUM_VECTORS:,} vectors, "
            f"dim {DIM}, single-query top-{TOP_K})"
        ),
    )
    cores = _available_cores()
    report("shard_scaling", table + f"\navailable cores: {cores}\n")

    # Acceptance gate: 4 shards must at least double single-query throughput
    # (the parity asserts inside the run already guaranteed bit-identical
    # answers at every shard count).  Shard fan-out runs on threads, so the
    # gate only binds where the hardware can actually run shards concurrently.
    if cores < MIN_CORES_FOR_GATE:
        pytest.skip(
            f"speedup gate needs >= {MIN_CORES_FOR_GATE} cores, found {cores} "
            "(parity checks still ran)"
        )
    assert results[4]["speedup"] >= MIN_SPEEDUP_AT_4, (
        f"4-shard speedup {results[4]['speedup']:.2f}x below {MIN_SPEEDUP_AT_4}x"
    )
