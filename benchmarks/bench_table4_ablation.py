"""Table IV — ablation study: w/o rerank, w/o ANNS, w/o key frames.

Reproduces the ablation grid on queries Q1.1/Q1.2 (Cityscapes) and Q2.1/Q2.2
(Bellevue): query accuracy (AveP), fast-search latency, and rerank latency for
the full system and each ablated variant, plus the storage impact of dropping
key-frame selection.
"""

from __future__ import annotations

from typing import Dict

from repro import LOVO
from repro.config import KeyframeConfig, QueryConfig
from repro.eval.metrics import evaluate_results
from repro.eval.reporting import format_table
from repro.eval.workloads import build_ground_truth, query_by_id

from conftest import bench_lovo_config, report

QUERIES = ["Q1.1", "Q1.2", "Q2.1", "Q2.2"]

VARIANTS = {
    "LOVO": {},
    "w/o Rerank": {"query": QueryConfig(rerank_enabled=False)},
    "w/o ANNS": {"query": QueryConfig(ann_enabled=False)},
    "w/o Key frame": {"keyframes": KeyframeConfig(strategy="all")},
}


def run_ablation(bench_env) -> Dict[str, Dict[str, Dict[str, float]]]:
    datasets = {
        "cityscapes": bench_env.dataset("cityscapes"),
        "bellevue": bench_env.dataset("bellevue"),
    }
    # The w/o-key-frame variant indexes every frame; keep its dataset smaller
    # so the benchmark stays fast, as the paper notes the ablation is about
    # storage and fast-search latency, not accuracy.
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    ground_truth = {
        query_id: build_ground_truth(datasets[query_by_id(query_id).dataset], query_by_id(query_id))
        for query_id in QUERIES
    }

    for variant_name, overrides in VARIANTS.items():
        config = bench_lovo_config().with_overrides(**overrides)
        systems = {}
        for dataset_name, dataset in datasets.items():
            system = LOVO(config)
            system.ingest(dataset)
            systems[dataset_name] = system
        results[variant_name] = {}
        for query_id in QUERIES:
            spec = query_by_id(query_id)
            system = systems[spec.dataset]
            response = system.query(spec.text)
            results[variant_name][query_id] = {
                "avep": evaluate_results(response.results, ground_truth[query_id]),
                "fast_search": response.timings.get("fast_search", 0.0),
                "rerank": response.timings.get("rerank", 0.0),
                "entities": system.num_entities,
            }
    return results


def test_table4_ablation(benchmark, bench_env):
    results = benchmark.pedantic(run_ablation, args=(bench_env,), rounds=1, iterations=1)

    rows = []
    for variant_name, per_query in results.items():
        for metric in ("avep", "fast_search", "rerank"):
            row = [variant_name, metric]
            for query_id in QUERIES:
                value = per_query[query_id][metric]
                if metric == "avep":
                    row.append(f"{value:.2f}")
                elif metric == "rerank" and value == 0.0:
                    row.append("-")
                else:
                    row.append(f"{value:.4f}")
            rows.append(row)
    table = format_table(
        ["variant", "metric"] + QUERIES,
        rows,
        title="Table IV: ablation of rerank, ANNS, and key-frame selection",
    )
    report("table4_ablation", table)

    # Shape assertions from the paper:
    # * the rerank matters most for the complex relational query (Q2.2);
    # * dropping ANNS keeps accuracy essentially unchanged (the latency gap
    #   the paper reports at 10^7-entity scale is swept in Fig. 11(b); at
    #   this benchmark's ~10^4-entity index a single exact scan is cheap, so
    #   only the accuracy claim is asserted here — see EXPERIMENTS.md);
    # * removing key-frame selection inflates the index and fast-search time.
    full = results["LOVO"]
    no_rerank = results["w/o Rerank"]
    assert full["Q2.2"]["avep"] >= no_rerank["Q2.2"]["avep"]

    no_anns = results["w/o ANNS"]
    mean_avep_full = sum(full[q]["avep"] for q in QUERIES) / len(QUERIES)
    mean_avep_no_anns = sum(no_anns[q]["avep"] for q in QUERIES) / len(QUERIES)
    assert abs(mean_avep_full - mean_avep_no_anns) < 0.15
    mean_fast_full = sum(full[q]["fast_search"] for q in QUERIES) / len(QUERIES)

    no_keyframes = results["w/o Key frame"]
    assert no_keyframes["Q1.1"]["entities"] > full["Q1.1"]["entities"]
    mean_fast_no_keyframes = sum(no_keyframes[q]["fast_search"] for q in QUERIES) / len(QUERIES)
    assert mean_fast_no_keyframes > mean_fast_full
