"""Batched multi-query throughput: ``query_batch`` vs a sequential loop.

The paper's setting is many users querying one ingested video collection.
This benchmark measures end-to-end queries/sec of LOVO's batched query engine
against the same queries answered one ``query()`` call at a time, using the
Table II workload tiled to the batch size (so, like a production queue, the
batch contains repeated query strings).

The flat-index configuration is the acceptance gate: at batch size 32 the
batched engine must deliver at least 3x the sequential throughput.  The other
index families are reported for completeness.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro import LOVO
from repro.eval.reporting import format_table
from repro.eval.workloads import queries_for_dataset

from conftest import bench_lovo_config, report

BATCH_SIZE = 32
ROUNDS = 3
DATASET = "bellevue"
#: A single moderately sized video keeps the benchmark CI-friendly while the
#: index still holds thousands of patch vectors.
NUM_VIDEOS = 1
FRAMES_PER_VIDEO = 200


def _tiled_queries(dataset_name: str, batch_size: int) -> List[str]:
    """The dataset's Table II queries repeated up to ``batch_size``."""
    texts = [spec.text for spec in queries_for_dataset(dataset_name)]
    tiled = (texts * (batch_size // len(texts) + 1))[:batch_size]
    return tiled


def _ingested_system(bench_env, index_type: str) -> LOVO:
    system = LOVO(bench_lovo_config(index_type))
    system.ingest(bench_env.dataset(DATASET, NUM_VIDEOS, FRAMES_PER_VIDEO))
    return system


def _throughput(run, batch_size: int, rounds: int = ROUNDS) -> float:
    """Best-of-``rounds`` queries/sec of ``run`` (a no-arg callable)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return batch_size / best


def measure_index_type(bench_env, index_type: str) -> Dict[str, float]:
    """Sequential and batched queries/sec for one index family."""
    texts = _tiled_queries(DATASET, BATCH_SIZE)
    sequential_system = _ingested_system(bench_env, index_type)
    batched_system = _ingested_system(bench_env, index_type)

    sequential_qps = _throughput(
        lambda: [sequential_system.query(text) for text in texts], BATCH_SIZE
    )
    batched_qps = _throughput(lambda: batched_system.query_batch(texts), BATCH_SIZE)
    return {
        "sequential_qps": sequential_qps,
        "batched_qps": batched_qps,
        "speedup": batched_qps / sequential_qps,
    }


def run_batch_throughput(bench_env) -> Dict[str, Dict[str, float]]:
    """Throughput comparison across all three index families."""
    return {
        index_type: measure_index_type(bench_env, index_type)
        for index_type in ("flat", "ivfpq", "hnsw")
    }


def test_batch_throughput(benchmark, bench_env):
    results = benchmark.pedantic(
        run_batch_throughput, args=(bench_env,), rounds=1, iterations=1
    )

    rows = [
        [
            index_type,
            f"{values['sequential_qps']:.1f}",
            f"{values['batched_qps']:.1f}",
            f"{values['speedup']:.1f}x",
        ]
        for index_type, values in results.items()
    ]
    table = format_table(
        ["index", "sequential (q/s)", "batched (q/s)", "speedup"],
        rows,
        title=f"Batched query throughput (batch size {BATCH_SIZE}, {DATASET})",
    )
    report("batch_throughput", table)

    # Acceptance gate: the batched engine is >= 3x sequential on the flat
    # index, and never slower than sequential on any index family.
    assert results["flat"]["speedup"] >= 3.0
    for values in results.values():
        assert values["speedup"] >= 1.0
